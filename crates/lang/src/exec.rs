//! Planning and execution: AST → [`LogicalPlan`] → cost-based
//! [`Planner`] → [`tsq_core::PhysicalPlan`] → the single plan executor.
//!
//! [`Catalog::execute_with`] is the one execution entry point: it merges
//! the statement's own `WITH (...)` clause with caller overrides into a
//! single [`QueryOptions`], lowers the AST to a resolved logical plan,
//! asks the planner (fed by per-relation [`RelationStats`], which
//! snapshots persist) for the cheapest physical operator, and runs it
//! through [`tsq_core::plan::execute_plan`]. [`Catalog::execute`],
//! [`Catalog::run`] and the batch paths are thin wrappers over it.
//! `EXPLAIN` / `EXPLAIN ANALYZE` surface the choice.
//!
//! A relation repartitioned by `SHARD <rel> INTO <n> BY HASH|RANGE`
//! keeps one [`ShardedIndex`] instead of a single whole-match index:
//! queries against it run scatter-gather ([`ShardedIndex::execute`])
//! with per-shard plans fanned over the worker pool and a typed merge
//! that reassembles answers byte-identical to the unsharded engine.
//! `APPEND` routes each row to its owning shard, so incremental
//! maintenance keeps working.
//!
//! Two layers of concurrency live here:
//!
//! - [`Catalog`] executes queries through `&self`, so any number of reader
//!   threads can share one catalog. The only interior mutability is the
//!   per-`(relation, window)` ST-index cache, guarded by an [`RwLock`]:
//!   cache hits take the read lock (concurrent), builds happen *outside*
//!   any lock, and only the final cache insertion takes the write lock.
//!   The cache is LRU-bounded and invalidated whenever its relation is
//!   re-registered, so long sessions neither grow without limit nor serve
//!   stale answers.
//! - [`SharedCatalog`] wraps a catalog in `Arc<RwLock<..>>` for the
//!   many-clients-one-catalog topology: queries take the outer read lock,
//!   registration the write lock. [`Catalog::run_batch`] fans a batch of
//!   query strings over a worker pool (`tsq_core::executor`).
//!
//! All locks recover from poisoning instead of panicking: a query that
//! panics mid-flight must not take the whole catalog down with it. The
//! guarded state stays consistent under recovery because every critical
//! section is a plain map operation on `Arc`'d immutable indexes — no user
//! code runs while a lock is held.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use tsq_core::plan::{
    self, ExecStats, LogicalPlan, PlanChoice, PlanPreference, PlanRows, Planner, QueryOptions,
    RelationStats,
};
use tsq_core::shard::{
    render_sharded_analyze, render_sharded_plan, ShardBy, ShardSpec, ShardedIndex,
};
use tsq_core::{
    executor, IndexConfig, LinearTransform, QueryWindow, SeriesRelation, SimilarityIndex,
    SubseqConfig, SubseqIndex,
};
use tsq_series::TimeSeries;

use crate::ast::{AppendRow, Query, Source, TransformSpec, WindowSpec};
use crate::error::LangError;

/// Default bound on the number of cached per-`(relation, window)`
/// subsequence ST-indexes (see [`Catalog::set_subseq_cache_capacity`]).
pub const DEFAULT_SUBSEQ_CACHE_CAPACITY: usize = 16;

/// A cached subsequence index: one ST-index over the whole relation, or
/// one per shard (over shard-local series ids) for a sharded relation.
/// The shapes never mix for one key — both `SHARD` and `register`
/// invalidate every cached entry of the relation they touch.
#[derive(Debug, Clone)]
pub(crate) enum CachedSubseq {
    /// ST-index over the whole relation (global series ids).
    Whole(Arc<SubseqIndex>),
    /// One ST-index per shard, shard order (shard-local series ids).
    Sharded(Vec<Arc<SubseqIndex>>),
}

impl CachedSubseq {
    /// The whole-relation index, when this entry has that shape.
    pub(crate) fn as_whole(&self) -> Option<&Arc<SubseqIndex>> {
        match self {
            CachedSubseq::Whole(index) => Some(index),
            CachedSubseq::Sharded(_) => None,
        }
    }

    fn as_sharded(&self) -> Option<&[Arc<SubseqIndex>]> {
        match self {
            CachedSubseq::Whole(_) => None,
            CachedSubseq::Sharded(parts) => Some(parts),
        }
    }
}

/// One cached ST-index with its last-hit stamp. The stamp is atomic so a
/// cache *hit* — which holds only the read lock — can still record
/// recency for the LRU eviction.
#[derive(Debug)]
pub(crate) struct CacheSlot {
    pub(crate) index: CachedSubseq,
    pub(crate) last_used: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct SubseqCache {
    pub(crate) map: HashMap<(String, usize), CacheSlot>,
    pub(crate) capacity: usize,
}

impl Default for SubseqCache {
    fn default() -> Self {
        SubseqCache {
            map: HashMap::new(),
            capacity: DEFAULT_SUBSEQ_CACHE_CAPACITY,
        }
    }
}

/// A relation's whole-match index: one [`SimilarityIndex`], or — after
/// a `SHARD` statement — one per shard behind a [`ShardedIndex`] that
/// executes queries scatter-gather.
#[derive(Debug)]
pub(crate) enum Indexed {
    /// Single unsharded index.
    Whole(SimilarityIndex),
    /// Per-shard indexes with the label-assignment map.
    Sharded(ShardedIndex),
}

impl Indexed {
    fn series_len(&self) -> usize {
        match self {
            Indexed::Whole(index) => index.series_len(),
            Indexed::Sharded(sharded) => sharded.series_len(),
        }
    }

    pub(crate) fn is_paged(&self) -> bool {
        match self {
            Indexed::Whole(index) => index.is_paged(),
            Indexed::Sharded(sharded) => sharded.is_paged(),
        }
    }

    fn config(&self) -> &IndexConfig {
        match self {
            Indexed::Whole(index) => index.config(),
            Indexed::Sharded(sharded) => sharded.config(),
        }
    }
}

/// A catalog of named relations with lazily-built similarity indexes.
///
/// Whole-sequence indexes are built eagerly at registration (every query
/// form needs one); subsequence ST-indexes depend on the query's `WINDOW`
/// length, so they are built on first use and cached per
/// `(relation, window)` behind an [`RwLock`] — `execute` stays `&self`,
/// and concurrent queries (cache hits included) never serialize behind a
/// single lock holder.
#[derive(Debug, Default)]
pub struct Catalog {
    pub(crate) relations: HashMap<String, SeriesRelation>,
    pub(crate) indexes: HashMap<String, Indexed>,
    /// Planner statistics per unsharded relation, computed at
    /// registration and persisted in snapshots so a restored catalog
    /// plans identically. Sharded relations keep per-shard statistics
    /// inside their [`ShardedIndex`] instead.
    pub(crate) stats: HashMap<String, RelationStats>,
    pub(crate) subseq: RwLock<SubseqCache>,
    /// Logical LRU clock; bumped on every cache access.
    pub(crate) clock: AtomicU64,
    /// Worker threads per ST-index build; 0 = the machine's parallelism.
    build_threads: usize,
    pub(crate) config: IndexConfig,
}

impl Catalog {
    /// Creates an empty catalog with the default index configuration.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a catalog whose indexes use `config`.
    pub fn with_config(config: IndexConfig) -> Self {
        Catalog {
            config,
            ..Catalog::default()
        }
    }

    /// Read access to the ST-index cache, recovering from poisoning: the
    /// cache holds only `Arc`'d immutable indexes and integer stamps, and
    /// no user code runs under the lock, so a panicking lock holder cannot
    /// leave it logically inconsistent — the poison flag carries no
    /// information worth a second panic.
    pub(crate) fn cache_read(&self) -> RwLockReadGuard<'_, SubseqCache> {
        self.subseq.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn cache_write(&self) -> RwLockWriteGuard<'_, SubseqCache> {
        self.subseq.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a relation (replacing any previous one of the same name)
    /// and builds its index. Every cached ST-index over the old relation
    /// is invalidated — a mutated relation must never serve stale
    /// subsequence answers.
    ///
    /// # Errors
    /// Propagates index-construction failures.
    pub fn register(&mut self, relation: SeriesRelation) -> Result<(), LangError> {
        let name = relation.name().to_string();
        let index = relation.index(self.config)?;
        self.cache_write().map.retain(|(rel, _), _| rel != &name);
        self.stats
            .insert(name.clone(), RelationStats::from_index(&index));
        self.relations.insert(name.clone(), relation);
        self.indexes.insert(name, Indexed::Whole(index));
        Ok(())
    }

    /// Planner statistics of a registered relation (cardinality, series
    /// length, R\*-tree level profile). `None` for sharded relations —
    /// their per-shard statistics live behind [`Catalog::shard_layout`].
    pub fn relation_stats(&self, name: &str) -> Option<&RelationStats> {
        self.stats.get(name)
    }

    /// Shard layout of a relation: `Some((by, count, per-shard series
    /// counts))` when sharded, `None` when unsharded (or unknown).
    pub fn shard_layout(&self, name: &str) -> Option<(ShardBy, usize, Vec<usize>)> {
        match self.indexes.get(name)? {
            Indexed::Whole(_) => None,
            Indexed::Sharded(sharded) => Some((
                sharded.map().spec().by(),
                sharded.shard_count(),
                (0..sharded.shard_count())
                    .map(|s| sharded.map().members(s).len())
                    .collect(),
            )),
        }
    }

    /// Sets the worker-thread count for each on-demand ST-index build
    /// (`0`, the default, uses the machine's available parallelism).
    ///
    /// Batch servers should set this: when several pool workers miss the
    /// cache on distinct `(relation, window)` keys at once, each build
    /// fans out on its own, so the machine can otherwise end up running
    /// `pool × cores` build threads.
    pub fn set_subseq_build_threads(&mut self, threads: usize) {
        self.build_threads = threads;
    }

    /// Caps the ST-index cache at `capacity` entries (at least 1),
    /// evicting least-recently-used entries beyond it immediately.
    pub fn set_subseq_cache_capacity(&mut self, capacity: usize) {
        let mut cache = self.cache_write();
        cache.capacity = capacity.max(1);
        while cache.map.len() > cache.capacity {
            let Some(victim) = Self::lru_key(&cache, None) else {
                break;
            };
            cache.map.remove(&victim);
        }
    }

    /// Number of cached subsequence ST-indexes (bounded by the capacity).
    pub fn subseq_cache_len(&self) -> usize {
        self.cache_read().map.len()
    }

    /// Cached `(relation, window)` keys, least recently used first —
    /// the order snapshots persist them in and evictions consume them in.
    pub fn subseq_cache_keys(&self) -> Vec<(String, usize)> {
        let cache = self.cache_read();
        let mut keys: Vec<(u64, (String, usize))> = cache
            .map
            .iter()
            .map(|(k, slot)| (slot.last_used.load(Ordering::Relaxed), k.clone()))
            .collect();
        keys.sort();
        keys.into_iter().map(|(_, k)| k).collect()
    }

    /// The least-recently-used cache key, skipping `keep` (the entry a
    /// caller just touched must never be its own eviction victim).
    pub(crate) fn lru_key(
        cache: &SubseqCache,
        keep: Option<&(String, usize)>,
    ) -> Option<(String, usize)> {
        cache
            .map
            .iter()
            .filter(|(k, _)| Some(*k) != keep)
            .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone())
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Option<&SeriesRelation> {
        self.relations.get(name)
    }

    /// Names of all registered relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    fn resolve_relation(&self, name: &str) -> Result<(&SeriesRelation, &Indexed), LangError> {
        match (self.relations.get(name), self.indexes.get(name)) {
            (Some(r), Some(i)) => Ok((r, i)),
            _ => Err(LangError::Resolve(format!("unknown relation {name:?}"))),
        }
    }

    fn resolve_source(&self, source: &Source) -> Result<TimeSeries, LangError> {
        match source {
            // The lexer already rejects non-finite literals, but a Query
            // can be built programmatically — keep the typed rejection
            // here so NaN can never reach the engine (or panic) from any
            // entry point.
            Source::Literal(values) => {
                TimeSeries::try_new(values.clone()).map_err(|e| LangError::Engine(e.into()))
            }
            Source::Ref { relation, label } => {
                let rel = self
                    .relations
                    .get(relation)
                    .ok_or_else(|| LangError::Resolve(format!("unknown relation {relation:?}")))?;
                rel.get_by_label(label)
                    .cloned()
                    .ok_or_else(|| LangError::Resolve(format!("unknown series {relation}.{label}")))
            }
        }
    }

    /// Returns the ST-index over `rel` for `window`, building and caching
    /// it on first use. The (potentially expensive) build happens outside
    /// any lock — cache hits are never blocked behind it — and uses the
    /// parallel build path. If two threads race on the same miss, the
    /// first finished build wins and the other is dropped; both are
    /// equivalent. Insertion beyond the capacity evicts the
    /// least-recently-used entry.
    fn subseq_index(
        &self,
        rel: &SeriesRelation,
        window: usize,
    ) -> Result<Arc<SubseqIndex>, LangError> {
        let key = (rel.name().to_string(), window);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.cache_read().map.get(&key) {
            if let Some(index) = slot.index.as_whole() {
                slot.last_used.store(stamp, Ordering::Relaxed);
                return Ok(Arc::clone(index));
            }
        }
        let build_threads = match self.build_threads {
            0 => executor::default_threads(),
            n => n,
        };
        let built = Arc::new(SubseqIndex::build_parallel(
            SubseqConfig::new(window),
            rel.series().to_vec(),
            build_threads,
        )?);
        // Re-stamp *after* the build: concurrent hits advanced the clock
        // while we built, and inserting with the pre-build stamp would
        // make this freshest, most expensive entry the immediate LRU
        // victim. The same store refreshes the winner if another thread
        // won the build race.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cache = self.cache_write();
        let slot = cache
            .map
            .entry(key.clone())
            .and_modify(|slot| {
                // Defensive: a stale entry of the wrong shape (cannot
                // happen — SHARD invalidates) is replaced, never served.
                if slot.index.as_whole().is_none() {
                    slot.index = CachedSubseq::Whole(Arc::clone(&built));
                }
            })
            .or_insert_with(|| CacheSlot {
                index: CachedSubseq::Whole(Arc::clone(&built)),
                last_used: AtomicU64::new(stamp),
            });
        slot.last_used.store(stamp, Ordering::Relaxed);
        let index = Arc::clone(slot.index.as_whole().expect("shape ensured above"));
        while cache.map.len() > cache.capacity {
            let Some(victim) = Self::lru_key(&cache, Some(&key)) else {
                break;
            };
            cache.map.remove(&victim);
        }
        Ok(index)
    }

    /// Per-shard ST-indexes over a sharded relation for `window`,
    /// building and caching them on first use under the same
    /// `(relation, window)` key — and the same LRU bound — as the
    /// whole-relation path. Sharded cache entries are session-local:
    /// snapshots do not persist them (they rebuild on demand).
    fn subseq_shards(
        &self,
        rel_name: &str,
        sharded: &ShardedIndex,
        window: usize,
    ) -> Result<Vec<Arc<SubseqIndex>>, LangError> {
        let key = (rel_name.to_string(), window);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.cache_read().map.get(&key) {
            if let Some(parts) = slot.index.as_sharded() {
                slot.last_used.store(stamp, Ordering::Relaxed);
                return Ok(parts.to_vec());
            }
        }
        let build_threads = match self.build_threads {
            0 => executor::default_threads(),
            n => n,
        };
        let mut built = Vec::with_capacity(sharded.shard_count());
        for part in sharded.parts() {
            let series: Vec<TimeSeries> = (0..part.len())
                .map(|i| part.series(i).expect("local id valid").clone())
                .collect();
            built.push(Arc::new(SubseqIndex::build_parallel(
                SubseqConfig::new(window),
                series,
                build_threads,
            )?));
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cache = self.cache_write();
        let slot = cache
            .map
            .entry(key.clone())
            .and_modify(|slot| {
                if slot.index.as_sharded().is_none() {
                    slot.index = CachedSubseq::Sharded(built.clone());
                }
            })
            .or_insert_with(|| CacheSlot {
                index: CachedSubseq::Sharded(built.clone()),
                last_used: AtomicU64::new(stamp),
            });
        slot.last_used.store(stamp, Ordering::Relaxed);
        let parts = slot
            .index
            .as_sharded()
            .expect("shape ensured above")
            .to_vec();
        while cache.map.len() > cache.capacity {
            let Some(victim) = Self::lru_key(&cache, Some(&key)) else {
                break;
            };
            cache.map.remove(&victim);
        }
        Ok(parts)
    }

    /// Parses and executes a query.
    pub fn run(&self, src: &str) -> Result<QueryOutput, LangError> {
        let query = crate::parser::parse(src)?;
        self.execute(&query)
    }

    /// Parses and executes a statement that may mutate the catalog:
    /// `APPEND` routes to [`Catalog::append`], `SHARD` to
    /// [`Catalog::shard`], everything else to [`Catalog::execute`].
    /// Shells and single-owner embedders use this; shared topologies
    /// route through [`SharedCatalog::run`], which takes the write lock
    /// only for mutations.
    pub fn run_mut(&mut self, src: &str) -> Result<QueryOutput, LangError> {
        let query = crate::parser::parse(src)?;
        match &query {
            Query::Append { relation, rows } => self.append(relation, rows),
            Query::Shard {
                relation,
                count,
                by,
            } => self.shard(relation, *count, *by),
            _ => self.execute(&query),
        }
    }

    /// Applies a `SHARD <rel> INTO <n> BY HASH|RANGE` statement:
    /// partitions the relation's series over `n` shards (FNV-1a label
    /// hash, or lexicographic label ranges with boundaries cut from the
    /// current label population) and rebuilds one index per shard.
    /// Queries then execute scatter-gather with answers byte-identical
    /// to the unsharded engine; `INTO 1` collapses back to a single
    /// unsharded index. Every cached ST-index over the relation is
    /// invalidated (its partitioning shape changed).
    ///
    /// Returns one row per shard: `a` is `shard<i>`, `distance` the
    /// number of series it holds.
    ///
    /// # Errors
    /// [`LangError::Resolve`] for an unknown relation;
    /// [`LangError::Engine`] with [`tsq_core::Error::Unsupported`] when
    /// paged storage is attached (page files are immutable — shard
    /// before `open_paged`, or re-register first) or `count` is zero;
    /// index-build failures of any shard.
    pub fn shard(
        &mut self,
        relation: &str,
        count: usize,
        by: ShardBy,
    ) -> Result<QueryOutput, LangError> {
        let rebuilt: Indexed = {
            let (rel, indexed) = self.resolve_relation(relation)?;
            if indexed.is_paged() {
                return Err(LangError::Engine(tsq_core::Error::Unsupported(
                    "SHARD a relation with paged storage attached (the page file is immutable)"
                        .to_string(),
                )));
            }
            if count == 1 {
                Indexed::Whole(rel.index(self.config)?)
            } else {
                let spec = match by {
                    ShardBy::Hash => ShardSpec::hash(count),
                    ShardBy::Range => {
                        let labels: Vec<&str> = (0..rel.len())
                            .map(|id| rel.label(id).expect("id < len"))
                            .collect();
                        ShardSpec::range(count, &labels)
                    }
                }
                .map_err(LangError::Engine)?;
                Indexed::Sharded(
                    ShardedIndex::build(self.config, rel, spec).map_err(LangError::Engine)?,
                )
            }
        };
        // Cached ST-indexes carry the old partitioning shape; drop them.
        self.cache_write().map.retain(|(r, _), _| r != relation);
        let rows = match &rebuilt {
            Indexed::Whole(index) => vec![Row {
                a: "shard0".to_string(),
                b: None,
                offset: None,
                distance: index.len() as f64,
            }],
            Indexed::Sharded(sharded) => (0..sharded.shard_count())
                .map(|s| Row {
                    a: format!("shard{s}"),
                    b: None,
                    offset: None,
                    distance: sharded.map().members(s).len() as f64,
                })
                .collect(),
        };
        match &rebuilt {
            Indexed::Whole(index) => {
                self.stats
                    .insert(relation.to_string(), RelationStats::from_index(index));
            }
            Indexed::Sharded(_) => {
                self.stats.remove(relation);
            }
        }
        self.indexes.insert(relation.to_string(), rebuilt);
        Ok(QueryOutput {
            rows,
            nodes_visited: 0,
            stats: ExecStats::default(),
            shard_stats: Vec::new(),
            plan: "Shard".to_string(),
            explain: None,
        })
    }

    /// Applies an `APPEND` statement, maintaining every index
    /// *incrementally* — no index is dropped or rebuilt from scratch:
    ///
    /// - the relation's series grow in place ([`SeriesRelation`]); an
    ///   unknown label starts a new series (the relation is then ragged
    ///   until appends even the lengths out);
    /// - the whole-series index re-extracts features for the touched
    ///   series only and repacks canonically
    ///   ([`SimilarityIndex::extend_series`]), so the result is
    ///   byte-identical to a fresh build over the final data;
    /// - every cached subsequence ST-index over the relation is extended
    ///   in place ([`SubseqIndex::extend_series`] resumes the sliding-DFT
    ///   recurrence at `O(k)` per appended point) under the cache lock,
    ///   clone-on-write (`Arc::make_mut`) so in-flight readers keep their
    ///   consistent pre-append snapshot;
    /// - planner statistics are refreshed so later plans see the new
    ///   shape.
    ///
    /// The statement is **atomic**: everything is validated up front
    /// (unknown relation, paged storage, non-finite values, a schema that
    /// no longer fits), and only then applied — on any error the relation
    /// and every index are exactly as they were.
    ///
    /// Returns one row per distinct label in first-touch order: `a` is
    /// the label, `offset` the series' new length, `distance` the number
    /// of points appended to it.
    ///
    /// # Errors
    /// [`LangError::Resolve`] for an unknown relation or an empty
    /// statement; [`LangError::Engine`] with
    /// [`tsq_core::Error::Unsupported`] when paged storage is attached
    /// (page files are immutable), [`tsq_core::Error::NonFinite`] for
    /// NaN/±∞ values, [`tsq_core::Error::InvalidCutoff`] when a series
    /// (typically a new one) would be too short for the feature schema.
    pub fn append(&mut self, relation: &str, rows: &[AppendRow]) -> Result<QueryOutput, LangError> {
        // Validation phase: nothing is mutated until every row has been
        // checked against the final state it would produce.
        let (rel, indexed) = self.resolve_relation(relation)?;
        if indexed.is_paged() {
            return Err(LangError::Engine(tsq_core::Error::Unsupported(
                "APPEND to a relation with paged storage attached (the page file is immutable)"
                    .to_string(),
            )));
        }
        if rows.is_empty() {
            return Err(LangError::Resolve("APPEND carries no rows".to_string()));
        }
        let schema = indexed.config().schema;
        let mut final_len: HashMap<&str, usize> = HashMap::new();
        // Rows for labels the relation does not know yet assemble into
        // whole new series (first-occurrence order), pushed once complete:
        // the whole-series index extracts features per stored series, so a
        // new series enters it only at its final statement-end length.
        let mut new_series: Vec<(&str, Vec<f64>)> = Vec::new();
        for row in rows {
            if row.values.is_empty() {
                return Err(LangError::Resolve(format!(
                    "APPEND row for {:?} carries no values",
                    row.label
                )));
            }
            if let Some((at, v)) = row.values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Err(LangError::Engine(tsq_core::Error::NonFinite {
                    context: format!(
                        "APPEND value {v} at position {at} of the row for {:?}",
                        row.label
                    ),
                }));
            }
            let len = final_len
                .entry(row.label.as_str())
                .or_insert_with(|| rel.get_by_label(&row.label).map_or(0, |s| s.len()));
            *len += row.values.len();
            if rel.get_by_label(&row.label).is_none() {
                match new_series.iter_mut().find(|(l, _)| *l == row.label) {
                    Some((_, values)) => values.extend_from_slice(&row.values),
                    None => new_series.push((row.label.as_str(), row.values.clone())),
                }
            }
        }
        for len in final_len.values() {
            schema.validate(*len).map_err(LangError::Engine)?;
        }
        let new_labels: Vec<String> = new_series.iter().map(|(l, _)| l.to_string()).collect();
        let new_values: Vec<Vec<f64>> = new_series.into_iter().map(|(_, v)| v).collect();
        // Apply phase: validated above, so no step below can fail.
        // Pre-existing labels are extended in row order (their lengths
        // only grow, and a schema that fits a length fits every longer
        // one); new series are pushed complete, in first-occurrence order.
        let rel = self.relations.get_mut(relation).expect("resolved above");
        let indexed = self.indexes.get_mut(relation).expect("resolved above");
        // The index absorbs the statement as one batch (one canonical
        // repack per touched shard), not row by row.
        let mut edits: Vec<(usize, &[f64])> = Vec::with_capacity(rows.len());
        for row in rows {
            if new_labels.contains(&row.label) {
                continue;
            }
            let id = rel
                .extend_series(&row.label, &row.values)
                .expect("validated upfront");
            edits.push((id, row.values.as_slice()));
        }
        let pushed: Vec<TimeSeries> = new_values
            .iter()
            .map(|values| TimeSeries::try_new(values.clone()).expect("validated upfront"))
            .collect();
        for (label, series) in new_labels.iter().zip(&pushed) {
            rel.push(label.clone(), series.clone())
                .expect("label is new");
        }
        match indexed {
            Indexed::Whole(index) => {
                if !edits.is_empty() {
                    index
                        .extend_series_batch(&edits)
                        .expect("validated upfront");
                }
                if !pushed.is_empty() {
                    index.push_series_batch(pushed).expect("validated upfront");
                }
                self.stats
                    .insert(relation.to_string(), RelationStats::from_index(index));
            }
            Indexed::Sharded(sharded) => {
                // Each edit and each new series routes to its owning
                // shard; the sharded index refreshes the touched shards'
                // planner statistics itself.
                if !edits.is_empty() {
                    sharded
                        .extend_series_batch(&edits)
                        .expect("validated upfront");
                }
                for (label, series) in new_labels.iter().zip(pushed) {
                    sharded
                        .push_series(label, series)
                        .expect("validated upfront");
                }
            }
        }
        // Maintain every cached ST-index over this relation in place —
        // never `retain`-drop it: the next subsequence query must hit the
        // incrementally-extended cache, not pay a full rebuild.
        // `Arc::make_mut` is clone-on-write, so a reader still traversing
        // the pre-append index keeps its consistent snapshot.
        {
            let shard_map = match &*indexed {
                Indexed::Whole(_) => None,
                Indexed::Sharded(sharded) => Some(sharded.map()),
            };
            let mut cache = self.subseq.write().unwrap_or_else(PoisonError::into_inner);
            for ((rel_name, _), slot) in cache.map.iter_mut() {
                if rel_name != relation {
                    continue;
                }
                match &mut slot.index {
                    CachedSubseq::Whole(index) => {
                        let idx = Arc::make_mut(index);
                        for row in rows {
                            if new_labels.contains(&row.label) {
                                continue;
                            }
                            let id = rel.id_of(&row.label).expect("applied above");
                            idx.extend_series(id, &row.values)
                                .expect("validated upfront");
                        }
                        for values in &new_values {
                            idx.insert(
                                TimeSeries::try_new(values.clone()).expect("validated upfront"),
                            );
                        }
                    }
                    // Per-shard ST-indexes speak shard-local ids: route
                    // every edit through the owner map, and every new
                    // series to the shard its label hashes/sorts into.
                    CachedSubseq::Sharded(parts) => {
                        let map = shard_map.expect("sharded cache entry implies sharded index");
                        for row in rows {
                            if new_labels.contains(&row.label) {
                                continue;
                            }
                            let id = rel.id_of(&row.label).expect("applied above");
                            let (shard, local) = map.owner(id).expect("applied above");
                            Arc::make_mut(&mut parts[shard])
                                .extend_series(local, &row.values)
                                .expect("validated upfront");
                        }
                        for (label, values) in new_labels.iter().zip(&new_values) {
                            let id = rel.id_of(label).expect("applied above");
                            let (shard, _) = map.owner(id).expect("applied above");
                            Arc::make_mut(&mut parts[shard]).insert(
                                TimeSeries::try_new(values.clone()).expect("validated upfront"),
                            );
                        }
                    }
                }
            }
        }
        // One answer row per distinct label, in first-touch order.
        let mut order: Vec<&str> = Vec::new();
        let mut appended: HashMap<&str, usize> = HashMap::new();
        for row in rows {
            if !appended.contains_key(row.label.as_str()) {
                order.push(&row.label);
            }
            *appended.entry(row.label.as_str()).or_insert(0) += row.values.len();
        }
        let out_rows = order
            .into_iter()
            .map(|label| Row {
                a: label.to_string(),
                b: None,
                offset: Some(rel.get_by_label(label).expect("applied above").len()),
                distance: appended[label] as f64,
            })
            .collect();
        Ok(QueryOutput {
            rows: out_rows,
            nodes_visited: 0,
            stats: ExecStats::default(),
            shard_stats: Vec::new(),
            plan: "Append".to_string(),
            explain: None,
        })
    }

    /// Parses and executes a batch of queries, fanning them over up to
    /// `threads` worker threads. A thin wrapper over
    /// [`Catalog::run_batch_with`] (a `threads` of 0 means the hardware
    /// default).
    pub fn run_batch(
        &self,
        queries: Vec<String>,
        threads: usize,
    ) -> (Vec<Result<QueryOutput, LangError>>, BatchSummary) {
        let overrides = QueryOptions {
            threads: (threads > 0).then_some(threads),
            ..QueryOptions::default()
        };
        self.run_batch_with(queries, &overrides)
    }

    /// The consolidated batch path: parses each query and runs it
    /// through [`Catalog::execute_with`], overlaying `overrides` on
    /// every statement's own `WITH (...)` clause. The batch fans over up
    /// to `overrides.threads` worker threads (clamped by
    /// [`tsq_core::executor::clamp_threads`], so a hostile or
    /// fat-fingered request cannot spawn unbounded OS threads). Results
    /// come back in batch order and are identical to running each query
    /// sequentially; per-query failures occupy their slot without
    /// affecting the rest of the batch.
    pub fn run_batch_with(
        &self,
        queries: Vec<String>,
        overrides: &QueryOptions,
    ) -> (Vec<Result<QueryOutput, LangError>>, BatchSummary) {
        let started = Instant::now();
        let count = queries.len();
        let threads = executor::clamp_threads(overrides.threads.unwrap_or(0));
        let overrides = *overrides;
        let results = executor::parallel_map(threads, queries, move |src| {
            crate::parser::parse(&src).and_then(|query| self.execute_with(&query, &overrides))
        });
        let summary = summarize_batch(&results, count, threads, started.elapsed());
        (results, summary)
    }

    /// Executes a parsed query with the engine-default overrides — a
    /// thin wrapper over [`Catalog::execute_with`] (the statement's own
    /// `WITH (...)` clause still applies).
    pub fn execute(&self, query: &Query) -> Result<QueryOutput, LangError> {
        self.execute_with(query, &QueryOptions::default())
    }

    /// The single execution entry point: merge the statement's
    /// `WITH (...)` clause with `overrides` (overrides win field-wise),
    /// lower to a [`LogicalPlan`], let the cost-based [`Planner`] pick
    /// the cheapest [`tsq_core::PhysicalPlan`] per relation — or per
    /// shard, scatter-gathered, when the relation is sharded — run it,
    /// and attach labels.
    ///
    /// # Errors
    /// Resolution, validation, and engine failures of the query.
    pub fn execute_with(
        &self,
        query: &Query,
        overrides: &QueryOptions,
    ) -> Result<QueryOutput, LangError> {
        if let Query::Explain { analyze, query } = query {
            return self.explain_with(query, *analyze, overrides);
        }
        let options = query.options().merged(overrides);
        let logical = self.lower(query, &options)?;
        let (rel, indexed) = self.resolve_relation(logical.relation())?;
        let pref = preference_for(&logical, &options)?;
        match indexed {
            Indexed::Whole(index) => {
                let stats = self.stats_for(logical.relation(), index);
                let subseq = match logical.subseq_window() {
                    Some(w) => Some(self.subseq_index(rel, w)?),
                    None => None,
                };
                let choice = Planner::new(index, &stats)
                    .with_preference(pref)
                    .plan(&logical, subseq.as_deref())?;
                let (rows, exec) =
                    plan::execute_plan(&logical, &choice.plan, index, subseq.as_deref())?;
                Ok(label_output(rel, rows, exec, choice.plan.op.name(), None))
            }
            Indexed::Sharded(sharded) => {
                self.execute_sharded(rel, sharded, &logical, pref, &options)
            }
        }
    }

    /// Scatter-gather execution over a sharded relation: per-shard plans
    /// fan over the worker pool ([`ShardedIndex::execute`]), the typed
    /// merge reassembles the global answer, and the output carries both
    /// the exact-sum merged counters and the per-shard breakdown.
    fn execute_sharded(
        &self,
        rel: &SeriesRelation,
        sharded: &ShardedIndex,
        logical: &LogicalPlan,
        pref: PlanPreference,
        options: &QueryOptions,
    ) -> Result<QueryOutput, LangError> {
        let subseq = match logical.subseq_window() {
            Some(w) => Some(self.subseq_shards(logical.relation(), sharded, w)?),
            None => None,
        };
        let scatter = scatter_width(sharded.shard_count(), options);
        let outcome = sharded.execute(logical, pref, scatter, subseq.as_deref())?;
        let plan = sharded_plan_name(sharded.shard_count(), &outcome.plans);
        let mut out = label_output(rel, outcome.rows, outcome.merged, &plan, None);
        out.shard_stats = outcome.per_shard;
        Ok(out)
    }

    /// Plans a query and renders the plan tree without executing it
    /// (`EXPLAIN`); with `analyze`, also runs the chosen plan and appends
    /// the actual counters (`EXPLAIN ANALYZE`). The rendered text is in
    /// [`QueryOutput::explain`]; `ANALYZE` outputs carry the run's
    /// [`ExecStats`] (rows are never returned — the plan is the answer).
    /// Sharded relations render the per-shard plan tree, and `ANALYZE`
    /// appends one actual-counters line per shard plus the exact-sum
    /// total.
    ///
    /// # Errors
    /// Same validation failures as executing the inner query.
    pub fn explain(&self, query: &Query, analyze: bool) -> Result<QueryOutput, LangError> {
        self.explain_with(query, analyze, &QueryOptions::default())
    }

    fn explain_with(
        &self,
        query: &Query,
        analyze: bool,
        overrides: &QueryOptions,
    ) -> Result<QueryOutput, LangError> {
        if matches!(query, Query::Explain { .. }) {
            return Err(LangError::Resolve("cannot EXPLAIN an EXPLAIN".to_string()));
        }
        let options = query.options().merged(overrides);
        let logical = self.lower(query, &options)?;
        let (rel, indexed) = self.resolve_relation(logical.relation())?;
        let pref = preference_for(&logical, &options)?;
        match indexed {
            Indexed::Whole(index) => {
                let stats = self.stats_for(logical.relation(), index);
                // Planning must not execute anything, so only a *cached*
                // ST-index informs the estimate; a cold probe is planned
                // as such.
                let cached = logical
                    .subseq_window()
                    .and_then(|w| self.peek_subseq(logical.relation(), w));
                let choice = Planner::new(index, &stats)
                    .with_preference(pref)
                    .plan(&logical, cached.as_deref())?;
                let mut text = plan::render_plan(&logical, &choice, &stats);
                let mut exec = ExecStats::default();
                if analyze {
                    let subseq = match logical.subseq_window() {
                        Some(w) => Some(self.subseq_index(rel, w)?),
                        None => cached,
                    };
                    let (rows, actual) =
                        plan::execute_plan(&logical, &choice.plan, index, subseq.as_deref())?;
                    plan::render_analyze(&mut text, rows.len(), &actual);
                    exec = actual;
                }
                Ok(QueryOutput {
                    rows: Vec::new(),
                    nodes_visited: exec.nodes_visited,
                    stats: exec,
                    shard_stats: Vec::new(),
                    plan: choice.plan.op.name().to_string(),
                    explain: Some(text),
                })
            }
            Indexed::Sharded(sharded) => {
                let cached = logical
                    .subseq_window()
                    .and_then(|w| self.peek_subseq_shards(logical.relation(), w));
                let plans = sharded.plan_shards(&logical, pref, cached.as_deref())?;
                let mut text = render_sharded_plan(&logical, sharded, &plans);
                let plan = sharded_plan_name(sharded.shard_count(), &plans);
                let mut exec = ExecStats::default();
                let mut shard_stats = Vec::new();
                if analyze {
                    let subseq = match logical.subseq_window() {
                        Some(w) => Some(self.subseq_shards(logical.relation(), sharded, w)?),
                        None => None,
                    };
                    let scatter = scatter_width(sharded.shard_count(), &options);
                    let outcome = sharded.execute(&logical, pref, scatter, subseq.as_deref())?;
                    render_sharded_analyze(&mut text, outcome.rows.len(), &outcome);
                    exec = outcome.merged;
                    shard_stats = outcome.per_shard;
                }
                Ok(QueryOutput {
                    rows: Vec::new(),
                    nodes_visited: exec.nodes_visited,
                    stats: exec,
                    shard_stats,
                    plan,
                    explain: Some(text),
                })
            }
        }
    }

    /// Lowers an AST query to a resolved [`LogicalPlan`]: names resolved,
    /// transformations composed and validated, `force` demoted to a
    /// join hint on JOIN forms.
    fn lower(&self, query: &Query, options: &QueryOptions) -> Result<LogicalPlan, LangError> {
        match query {
            Query::Similar {
                source,
                relation,
                eps,
                transforms,
                window,
                ..
            } => {
                let (_, indexed) = self.resolve_relation(relation)?;
                Ok(LogicalPlan::Range {
                    relation: relation.clone(),
                    query: self.resolve_source(source)?,
                    eps: *eps,
                    transform: resolve_transforms(transforms, indexed.series_len())?,
                    window: to_window(window),
                })
            }
            Query::Nearest {
                source,
                relation,
                k,
                transforms,
                ..
            } => {
                let (_, indexed) = self.resolve_relation(relation)?;
                Ok(LogicalPlan::Knn {
                    relation: relation.clone(),
                    query: self.resolve_source(source)?,
                    k: *k,
                    transform: resolve_transforms(transforms, indexed.series_len())?,
                })
            }
            Query::Join {
                relation,
                eps,
                transforms,
                ..
            } => {
                let (_, indexed) = self.resolve_relation(relation)?;
                Ok(LogicalPlan::Join {
                    relation: relation.clone(),
                    eps: *eps,
                    transform: resolve_transforms(transforms, indexed.series_len())?,
                    hint: options.join_hint(),
                })
            }
            Query::SubseqSimilar {
                source,
                relation,
                eps,
                window,
                ..
            } => {
                self.resolve_relation(relation)?;
                Ok(LogicalPlan::SubseqRange {
                    relation: relation.clone(),
                    query: self.resolve_source(source)?,
                    eps: *eps,
                    window: *window,
                })
            }
            Query::SubseqNearest {
                source,
                relation,
                k,
                window,
                ..
            } => {
                self.resolve_relation(relation)?;
                Ok(LogicalPlan::SubseqKnn {
                    relation: relation.clone(),
                    query: self.resolve_source(source)?,
                    k: *k,
                    window: *window,
                })
            }
            Query::Explain { .. } => Err(LangError::Resolve(
                "EXPLAIN is not itself a plannable query".to_string(),
            )),
            // Unreachable through `run_mut`/`SharedCatalog`, which route
            // mutations before lowering; reachable programmatically via
            // `execute` on a shared reference, where mutating is
            // impossible.
            Query::Append { .. } => Err(LangError::Resolve(
                "APPEND mutates the catalog; run it through Catalog::run_mut or a SharedCatalog"
                    .to_string(),
            )),
            Query::Shard { .. } => Err(LangError::Resolve(
                "SHARD mutates the catalog; run it through Catalog::run_mut or a SharedCatalog"
                    .to_string(),
            )),
        }
    }

    /// The relation's planner statistics — tracked at registration; the
    /// fallback recomputation is defensive (the maps are always in step).
    fn stats_for(&self, name: &str, index: &SimilarityIndex) -> RelationStats {
        self.stats
            .get(name)
            .cloned()
            .unwrap_or_else(|| RelationStats::from_index(index))
    }

    /// A cached whole-relation ST-index, if present — without building or
    /// LRU-touching anything (the EXPLAIN path must not execute).
    fn peek_subseq(&self, relation: &str, window: usize) -> Option<Arc<SubseqIndex>> {
        let key = (relation.to_string(), window);
        self.cache_read()
            .map
            .get(&key)
            .and_then(|s| s.index.as_whole().map(Arc::clone))
    }

    /// Cached per-shard ST-indexes, if present — the sharded counterpart
    /// of [`Catalog::peek_subseq`], equally side-effect free.
    fn peek_subseq_shards(&self, relation: &str, window: usize) -> Option<Vec<Arc<SubseqIndex>>> {
        let key = (relation.to_string(), window);
        self.cache_read()
            .map
            .get(&key)
            .and_then(|s| s.index.as_sharded().map(<[_]>::to_vec))
    }
}

/// The plan preference a query's merged options imply. JOIN forms keep
/// `Auto` — their `force` travels as a [`tsq_core::plan::JoinHint`] inside
/// the logical plan, and two of its values (`scanfull`, `tree`) exist
/// *only* for joins, so routing them through `preference()` would reject
/// them spuriously.
fn preference_for(
    logical: &LogicalPlan,
    options: &QueryOptions,
) -> Result<PlanPreference, LangError> {
    if matches!(logical, LogicalPlan::Join { .. }) {
        Ok(PlanPreference::Auto)
    } else {
        options.preference().map_err(LangError::Engine)
    }
}

/// How many shards to probe concurrently: the smaller of the clamped
/// thread override and the `shards` override, never exceeding the shard
/// count and never zero.
fn scatter_width(shards: usize, options: &QueryOptions) -> usize {
    executor::clamp_threads(options.threads.unwrap_or(0))
        .min(options.shards.unwrap_or(usize::MAX).max(1))
        .min(shards.max(1))
        .max(1)
}

/// The reported plan name of a scatter-gather run: `Sharded(n):<op>` when
/// every active shard chose the same physical operator, `:mixed` when they
/// diverged, `:empty` when every shard was skipped.
fn sharded_plan_name(count: usize, plans: &[Option<PlanChoice>]) -> String {
    let mut ops = plans.iter().flatten().map(|c| c.plan.op.name());
    let body = match ops.next() {
        None => "empty".to_string(),
        Some(first) => {
            if ops.all(|op| op == first) {
                first.to_string()
            } else {
                "mixed".to_string()
            }
        }
    };
    format!("Sharded({count}):{body}")
}

/// Aggregate counters for one executed query batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Total answer rows across successful queries.
    pub rows: usize,
    /// Summed R\*-tree node visits across successful queries.
    pub nodes_visited: u64,
    /// Summed index-level candidates examined.
    pub candidates: usize,
    /// Summed exact distance refinements.
    pub refined: usize,
    /// Summed simulated disk accesses (plan-level accounting: scans charge
    /// one access per record, index plans nodes + candidate fetches).
    pub disk_accesses: u64,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads the batch ran on.
    pub threads: usize,
}

impl BatchSummary {
    /// Batch throughput in queries per second (0 when nothing ran).
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// A thread-safe, cloneable handle to one shared [`Catalog`]: the
/// many-clients-one-catalog topology of the ROADMAP's north star.
///
/// Queries take the outer read lock, so any number of clients execute
/// concurrently (including concurrent ST-index cache hits, which take
/// only the catalog's *inner* read lock); [`SharedCatalog::register`]
/// takes the write lock and so waits for in-flight queries to drain.
/// Both locks recover from poisoning: registration's mutation order
/// guarantees the worst an interrupted write can leave behind is a
/// relation whose index is missing, which every query reports as a
/// resolution error rather than a panic.
#[derive(Debug, Clone, Default)]
pub struct SharedCatalog {
    inner: Arc<RwLock<Catalog>>,
}

impl SharedCatalog {
    /// Wraps a catalog for sharing.
    pub fn new(catalog: Catalog) -> Self {
        SharedCatalog {
            inner: Arc::new(RwLock::new(catalog)),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Catalog> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Catalog> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a relation under the write lock.
    ///
    /// # Errors
    /// Propagates index-construction failures.
    pub fn register(&self, relation: SeriesRelation) -> Result<(), LangError> {
        self.write().register(relation)
    }

    /// Caps the shared catalog's ST-index cache.
    pub fn set_subseq_cache_capacity(&self, capacity: usize) {
        self.write().set_subseq_cache_capacity(capacity);
    }

    /// Bounds per-build parallelism (see
    /// [`Catalog::set_subseq_build_threads`]).
    pub fn set_subseq_build_threads(&self, threads: usize) {
        self.write().set_subseq_build_threads(threads);
    }

    /// Parses and executes one statement: queries run under the read
    /// lock (any number of clients concurrently); an `APPEND` takes the
    /// write lock, so it waits for in-flight queries to drain and every
    /// query that starts after it sees the fully-appended state.
    ///
    /// # Errors
    /// Same failure modes as [`Catalog::run_mut`].
    pub fn run(&self, src: &str) -> Result<QueryOutput, LangError> {
        let query = crate::parser::parse(src)?;
        self.execute(&query)
    }

    /// Executes a parsed statement — read lock for queries, write lock
    /// for `APPEND` and `SHARD` (see [`SharedCatalog::run`]).
    ///
    /// # Errors
    /// Same failure modes as [`Catalog::execute`] / [`Catalog::append`] /
    /// [`Catalog::shard`].
    pub fn execute(&self, query: &Query) -> Result<QueryOutput, LangError> {
        self.execute_with(query, &QueryOptions::default())
    }

    /// Executes a parsed statement with caller overrides layered over its
    /// `WITH (...)` clause — the shared-catalog face of
    /// [`Catalog::execute_with`]. Mutations (`APPEND`, `SHARD`) take the
    /// write lock; everything else runs under the read lock.
    ///
    /// # Errors
    /// Same failure modes as [`Catalog::execute_with`].
    pub fn execute_with(
        &self,
        query: &Query,
        overrides: &QueryOptions,
    ) -> Result<QueryOutput, LangError> {
        match query {
            Query::Append { relation, rows } => self.write().append(relation, rows),
            Query::Shard {
                relation,
                count,
                by,
            } => self.write().shard(relation, *count, *by),
            _ => self.read().execute_with(query, overrides),
        }
    }

    /// Runs a batch over the worker pool, taking the catalog read lock
    /// **per query** rather than for the whole batch. A writer calling
    /// [`SharedCatalog::register`] therefore only waits for the queries
    /// currently executing, not for every remaining query in a long
    /// batch — and queries that start after the registration see the new
    /// relation. Results are still in batch order and, absent concurrent
    /// writes, identical to [`Catalog::run_batch`]'s.
    pub fn run_batch(
        &self,
        queries: Vec<String>,
        threads: usize,
    ) -> (Vec<Result<QueryOutput, LangError>>, BatchSummary) {
        let overrides = QueryOptions {
            threads: (threads > 0).then_some(threads),
            ..QueryOptions::default()
        };
        self.run_batch_with(queries, &overrides)
    }

    /// The consolidated shared-catalog batch path: per-statement locking
    /// as in [`SharedCatalog::run_batch`], with `overrides` layered over
    /// each statement's own `WITH (...)` clause.
    pub fn run_batch_with(
        &self,
        queries: Vec<String>,
        overrides: &QueryOptions,
    ) -> (Vec<Result<QueryOutput, LangError>>, BatchSummary) {
        let started = Instant::now();
        let count = queries.len();
        let threads = executor::clamp_threads(overrides.threads.unwrap_or(0));
        let overrides = *overrides;
        // `execute_with` acquires and releases its lock per query.
        let results = executor::parallel_map(threads, queries, move |src| {
            crate::parser::parse(&src).and_then(|query| self.execute_with(&query, &overrides))
        });
        let summary = summarize_batch(&results, count, threads, started.elapsed());
        (results, summary)
    }

    /// Unwraps the shared catalog, returning the inner [`Catalog`] when
    /// this is the last handle, or `Err(self)` while clones remain.
    ///
    /// # Errors
    /// Returns `Err(self)` when other handles are still alive.
    pub fn into_inner(self) -> Result<Catalog, SharedCatalog> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner().unwrap_or_else(PoisonError::into_inner)),
            Err(inner) => Err(SharedCatalog { inner }),
        }
    }

    /// Read-locked access to a relation (the guard cannot escape, so the
    /// borrow is handed to a closure).
    pub fn with_relation<R>(&self, name: &str, f: impl FnOnce(Option<&SeriesRelation>) -> R) -> R {
        f(self.read().relation(name))
    }
}

/// Folds per-query batch results into a [`BatchSummary`] — shared by the
/// whole-batch ([`Catalog::run_batch`]) and per-query-lock
/// ([`SharedCatalog::run_batch`]) paths so the two report identically.
fn summarize_batch(
    results: &[Result<QueryOutput, LangError>],
    queries: usize,
    threads: usize,
    elapsed: Duration,
) -> BatchSummary {
    let mut summary = BatchSummary {
        queries,
        threads,
        elapsed,
        ..BatchSummary::default()
    };
    for r in results {
        match r {
            Ok(out) => {
                summary.rows += out.rows.len();
                summary.nodes_visited += out.nodes_visited;
                summary.candidates += out.stats.candidates;
                summary.refined += out.stats.refined;
                summary.disk_accesses += out.stats.disk_accesses;
            }
            Err(_) => summary.errors += 1,
        }
    }
    summary
}

/// Attaches labels to typed plan rows, producing the language-level
/// answer.
fn label_output(
    rel: &SeriesRelation,
    rows: PlanRows,
    stats: ExecStats,
    plan: &str,
    explain: Option<String>,
) -> QueryOutput {
    let label = |id: usize| rel.label(id).unwrap_or("?").to_string();
    let rows = match rows {
        PlanRows::Whole(matches) => matches
            .into_iter()
            .map(|m| Row {
                a: label(m.id),
                b: None,
                offset: None,
                distance: m.distance,
            })
            .collect(),
        PlanRows::Pairs(pairs) => pairs
            .into_iter()
            .map(|p| Row {
                a: label(p.a),
                b: Some(label(p.b)),
                offset: None,
                distance: p.distance,
            })
            .collect(),
        PlanRows::Windows(matches) => matches
            .into_iter()
            .map(|m| Row {
                a: label(m.series),
                b: None,
                offset: Some(m.offset),
                distance: m.distance,
            })
            .collect(),
    };
    QueryOutput {
        rows,
        nodes_visited: stats.nodes_visited,
        stats,
        shard_stats: Vec::new(),
        plan: plan.to_string(),
        explain,
    }
}

/// One output row: a label (and a second one for joins) plus the distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// First (or only) series label.
    pub a: String,
    /// Second label for join rows.
    pub b: Option<String>,
    /// Window offset for subsequence rows.
    pub offset: Option<usize>,
    /// Exact distance.
    pub distance: f64,
}

/// Query answer: labeled rows plus the full execution counters and the
/// plan the cost-based planner chose.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Answer rows (empty for `EXPLAIN` forms).
    pub rows: Vec<Row>,
    /// R\*-tree nodes visited (0 for scan plans) — kept alongside the full
    /// [`ExecStats`] for backward compatibility.
    pub nodes_visited: u64,
    /// Full execution counters (candidates, refines, disk accesses). For
    /// a sharded relation this is the exact sum of [`Self::shard_stats`].
    pub stats: ExecStats,
    /// Per-shard execution counters of a scatter-gather run, in shard
    /// order — empty for unsharded relations and for mutations.
    pub shard_stats: Vec<ExecStats>,
    /// Name of the physical operator that ran (e.g. `IndexRange`, or
    /// `Sharded(4):IndexRange` for a scatter-gather run).
    pub plan: String,
    /// Rendered plan tree for `EXPLAIN` / `EXPLAIN ANALYZE`.
    pub explain: Option<String>,
}

fn to_window(w: &WindowSpec) -> QueryWindow {
    QueryWindow {
        mean: w.mean,
        std: w.std,
    }
}

/// Resolves the APPLY list to a single composed transformation for series
/// length `n`. Transformations compose left to right; `warp(m)` must be
/// the only transformation (it changes the series length).
pub fn resolve_transforms(specs: &[TransformSpec], n: usize) -> Result<LinearTransform, LangError> {
    if specs.is_empty() {
        return Ok(LinearTransform::identity(n));
    }
    let mut result: Option<LinearTransform> = None;
    for spec in specs {
        let t = resolve_one(spec, n)?;
        result = Some(match result {
            None => t,
            Some(prev) => prev.then(&t)?,
        });
    }
    Ok(result.expect("non-empty specs"))
}

fn resolve_one(spec: &TransformSpec, n: usize) -> Result<LinearTransform, LangError> {
    let arity = |want: usize| -> Result<(), LangError> {
        if spec.args.len() == want {
            Ok(())
        } else {
            Err(LangError::Resolve(format!(
                "{} expects {want} argument(s), got {}",
                spec.name,
                spec.args.len()
            )))
        }
    };
    let positive_int = |v: f64, what: &str| -> Result<usize, LangError> {
        if v.fract() == 0.0 && v >= 1.0 {
            Ok(v as usize)
        } else {
            Err(LangError::Resolve(format!(
                "{what} must be a positive integer, got {v}"
            )))
        }
    };
    match spec.name.as_str() {
        "identity" => {
            arity(0)?;
            Ok(LinearTransform::identity(n))
        }
        "mavg" => {
            arity(1)?;
            let w = positive_int(spec.args[0], "mavg window")?;
            if w > n {
                return Err(LangError::Resolve(format!(
                    "mavg window {w} exceeds series length {n}"
                )));
            }
            Ok(LinearTransform::moving_average(n, w))
        }
        "wmavg" => {
            if spec.args.is_empty() || spec.args.len() > n {
                return Err(LangError::Resolve(
                    "wmavg expects between 1 and n weights".to_string(),
                ));
            }
            Ok(LinearTransform::weighted_moving_average(n, &spec.args))
        }
        "reverse" => {
            arity(0)?;
            Ok(LinearTransform::reverse(n))
        }
        "shift" => {
            arity(1)?;
            Ok(LinearTransform::shift(n, spec.args[0]))
        }
        "scale" => {
            arity(1)?;
            Ok(LinearTransform::scale(n, spec.args[0]))
        }
        "warp" => {
            arity(1)?;
            let m = positive_int(spec.args[0], "warp factor")?;
            Ok(LinearTransform::time_warp(n, m))
        }
        other => Err(LangError::Resolve(format!(
            "unknown transformation {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::generate::RandomWalkGenerator;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rel =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(51).relation(60, 32))
                .unwrap();
        cat.register(rel).unwrap();
        cat
    }

    #[test]
    fn similar_query_runs() {
        let cat = catalog();
        // Identity: the query series matches itself at distance zero.
        let out = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 2")
            .unwrap();
        assert!(out.rows.iter().any(|r| r.a == "s0" && r.distance < 1e-9));
        assert!(out.stats.disk_accesses > 0);
        // A selective threshold makes the cost-based planner take the
        // index path (an unselective one is correctly answered by a scan:
        // on 60 records, 60 accesses beat nodes + 60 candidate fetches).
        let tight = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 0.5")
            .unwrap();
        assert_eq!(tight.plan, "IndexRange");
        assert!(tight.nodes_visited > 0);
        assert!(tight.rows.iter().any(|r| r.a == "s0" && r.distance < 1e-9));
        // With a data-side transformation the self-distance is
        // D(mavg(nf(s0)), nf(s0)) — nonzero; the query must still run and
        // agree with the sequential scan.
        let smoothed = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 5 APPLY mavg(4)")
            .unwrap();
        assert!(!smoothed.rows.is_empty());
    }

    #[test]
    fn nearest_query_runs() {
        let cat = catalog();
        let out = cat.run("FIND 4 NEAREST TO walks.s3 IN walks").unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0].a, "s3");
    }

    #[test]
    fn literal_source() {
        let cat = catalog();
        let values: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s1")
            .unwrap()
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let q = format!("FIND 1 NEAREST TO [{}] IN walks", values.join(", "));
        let out = cat.run(&q).unwrap();
        assert_eq!(out.rows[0].a, "s1");
        assert!(out.rows[0].distance < 1e-9);
    }

    #[test]
    fn join_methods_agree() {
        let cat = catalog();
        let scan = cat
            .run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING SCAN")
            .unwrap();
        let index = cat
            .run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING INDEX")
            .unwrap();
        let tree = cat
            .run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING TREE")
            .unwrap();
        // Scan reports each pair once; index/tree twice.
        assert_eq!(index.rows.len(), 2 * scan.rows.len());
        assert_eq!(tree.rows.len(), index.rows.len());
    }

    #[test]
    fn subsequence_query_runs() {
        let cat = catalog();
        // A stored window matches itself at distance zero.
        let probe: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s2")
            .unwrap()
            .values()[5..13]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let q = format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 0.001 WINDOW 8",
            probe.join(", ")
        );
        let out = cat.run(&q).unwrap();
        assert!(out
            .rows
            .iter()
            .any(|r| r.a == "s2" && r.offset == Some(5) && r.distance < 1e-9));
        // Nearest form: the same window is the 1-NN.
        let qn = format!(
            "FIND 1 NEAREST SUBSEQUENCE OF [{}] IN walks WINDOW 8",
            probe.join(", ")
        );
        let near = cat.run(&qn).unwrap();
        assert_eq!(near.rows.len(), 1);
        assert_eq!(near.rows[0].a, "s2");
        assert_eq!(near.rows[0].offset, Some(5));
    }

    #[test]
    fn subsequence_query_length_must_match_window() {
        let cat = catalog();
        let err = cat
            .run("FIND SUBSEQUENCE OF [1, 2, 3] IN walks WITHIN 1 WINDOW 8")
            .unwrap_err();
        assert!(matches!(
            err,
            LangError::Engine(tsq_core::Error::LengthMismatch {
                expected: 8,
                got: 3
            })
        ));
    }

    #[test]
    fn subseq_index_is_cached_per_window() {
        let cat = catalog();
        let q = "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 32";
        let a = cat.run(q).unwrap();
        let b = cat.run(q).unwrap();
        assert_eq!(a, b);
        let cache = cat.cache_read();
        assert_eq!(cache.map.len(), 1);
        assert!(cache.map.contains_key(&("walks".to_string(), 32)));
    }

    #[test]
    fn register_invalidates_subseq_cache() {
        let mut cat = catalog();
        cat.run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 32")
            .unwrap();
        assert_eq!(cat.subseq_cache_len(), 1);
        let replacement =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(77).relation(10, 32))
                .unwrap();
        cat.register(replacement).unwrap();
        assert_eq!(cat.subseq_cache_len(), 0);
    }

    #[test]
    fn mutated_relation_serves_fresh_answers() {
        let mut cat = catalog();
        // Prime the cache: s2's own window matches at distance ~0.
        let probe: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s2")
            .unwrap()
            .values()[5..13]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let q = format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 0.001 WINDOW 8",
            probe.join(", ")
        );
        assert!(!cat.run(&q).unwrap().rows.is_empty());
        // Replace the relation with unrelated data: the old answer must
        // disappear — a stale cached ST-index would still report it.
        let replacement =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(987_654).relation(4, 32))
                .unwrap();
        cat.register(replacement).unwrap();
        assert!(cat.run(&q).unwrap().rows.is_empty());
    }

    #[test]
    fn subseq_cache_is_lru_bounded() {
        // A literal probe sized to the window, so every query is valid.
        fn probe(w: usize) -> String {
            let vals: Vec<String> = (0..w).map(|i| format!("{i}")).collect();
            format!(
                "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 100 WINDOW {w}",
                vals.join(", ")
            )
        }
        let mut cat = catalog();
        cat.set_subseq_cache_capacity(3);
        for w in [4usize, 5, 6] {
            cat.run(&probe(w)).unwrap();
        }
        assert_eq!(cat.subseq_cache_len(), 3);
        // Touch window 4 so window 5 becomes the LRU victim.
        cat.run(&probe(4)).unwrap();
        cat.run(&probe(7)).unwrap();
        {
            let cache = cat.cache_read();
            assert_eq!(cache.map.len(), 3);
            assert!(cache.map.contains_key(&("walks".to_string(), 4)));
            assert!(!cache.map.contains_key(&("walks".to_string(), 5)));
            assert!(cache.map.contains_key(&("walks".to_string(), 7)));
        }
        // Shrinking the capacity evicts immediately.
        cat.set_subseq_cache_capacity(1);
        assert_eq!(cat.subseq_cache_len(), 1);
        // Evicted windows still answer correctly (rebuilt on demand).
        assert!(cat.run(&probe(5)).is_ok());
    }

    #[test]
    fn reregister_interleaved_with_cache_fills_keeps_lru_consistent() {
        // `register` invalidates by `retain` on the map. Recency lives in
        // atomic stamps *inside* the retained slots (there is no separate
        // recency list to fall out of step), so interleaving re-registers
        // with cache-filling queries must leave no dangling keys, stay
        // within capacity, and keep evicting the true LRU survivor.
        fn probe(rel: &str, w: usize) -> String {
            let vals: Vec<String> = (0..w).map(|i| format!("{i}")).collect();
            format!(
                "FIND SUBSEQUENCE OF [{}] IN {rel} WITHIN 100 WINDOW {w}",
                vals.join(", ")
            )
        }
        let mut cat = catalog();
        cat.register(
            SeriesRelation::from_series("other", RandomWalkGenerator::new(8).relation(12, 32))
                .unwrap(),
        )
        .unwrap();
        cat.set_subseq_cache_capacity(3);
        // Fill to capacity across both relations.
        cat.run(&probe("walks", 4)).unwrap();
        cat.run(&probe("other", 5)).unwrap();
        cat.run(&probe("walks", 6)).unwrap();
        assert_eq!(cat.subseq_cache_len(), 3);
        // Re-register `walks` mid-stream: only its entries vanish.
        let replacement =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(91).relation(20, 32))
                .unwrap();
        cat.register(replacement).unwrap();
        {
            let cache = cat.cache_read();
            assert_eq!(cache.map.len(), 1, "only the survivor remains");
            assert!(cache.map.contains_key(&("other".to_string(), 5)));
            assert!(cache.map.keys().all(|(rel, _)| rel != "walks"));
        }
        // Keep filling: the survivor's stamp is still honored, so after
        // refilling past capacity the eviction victim is the *oldest
        // surviving* entry, not a phantom of the retained map.
        cat.run(&probe("walks", 4)).unwrap();
        cat.run(&probe("walks", 6)).unwrap();
        assert_eq!(cat.subseq_cache_len(), 3);
        // Touch the survivor so ("walks", 4) becomes the LRU, then evict.
        cat.run(&probe("other", 5)).unwrap();
        cat.run(&probe("walks", 7)).unwrap();
        {
            let cache = cat.cache_read();
            assert_eq!(cache.map.len(), 3);
            assert!(cache.map.contains_key(&("other".to_string(), 5)));
            assert!(cache.map.contains_key(&("walks".to_string(), 6)));
            assert!(cache.map.contains_key(&("walks".to_string(), 7)));
            assert!(!cache.map.contains_key(&("walks".to_string(), 4)));
        }
        // Recency keys reported by the public API match the map exactly —
        // no dangling keys either way.
        let keys = cat.subseq_cache_keys();
        assert_eq!(keys.len(), cat.subseq_cache_len());
        let cache = cat.cache_read();
        for key in &keys {
            assert!(cache.map.contains_key(key), "dangling recency key {key:?}");
        }
    }

    #[test]
    fn poisoned_cache_lock_recovers_instead_of_panicking() {
        let mut cat = catalog();
        cat.run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 32")
            .unwrap();
        // Poison the cache lock: a thread panics while holding the write
        // guard. Before the RwLock rewrite this made every later
        // subsequence query (and every registration) panic permanently.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cat.subseq.write().unwrap();
            panic!("query thread dies mid-flight");
        }));
        assert!(result.is_err());
        assert!(cat.subseq.is_poisoned());
        // Cache hit, cache miss, and invalidation all still work.
        assert!(cat
            .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 32")
            .is_ok());
        let vals: Vec<String> = (0..16).map(|i| format!("{i}")).collect();
        assert!(cat
            .run(&format!(
                "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 100 WINDOW 16",
                vals.join(", ")
            ))
            .is_ok());
        let replacement =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(5).relation(8, 32))
                .unwrap();
        cat.register(replacement).unwrap();
        assert_eq!(cat.subseq_cache_len(), 0);
    }

    #[test]
    fn non_finite_literal_is_a_typed_error_not_a_panic() {
        let cat = catalog();
        // Through the parser: overflowing literals die at the lexer.
        assert!(matches!(
            cat.run("FIND SIMILAR TO [1e999, 2] IN walks WITHIN 1"),
            Err(LangError::Lex { .. })
        ));
        // Programmatic queries bypass the lexer; the executor must still
        // reject NaN with a typed error instead of panicking.
        let q = Query::Nearest {
            source: Source::Literal(vec![1.0, f64::NAN]),
            relation: "walks".into(),
            k: 1,
            transforms: Vec::new(),
            options: QueryOptions::default(),
        };
        assert!(matches!(
            cat.execute(&q),
            Err(LangError::Engine(tsq_core::Error::NonFinite { .. }))
        ));
    }

    #[test]
    fn run_batch_matches_sequential() {
        let cat = catalog();
        let queries: Vec<String> = (0..12)
            .map(|i| match i % 4 {
                0 => format!("FIND SIMILAR TO walks.s{i} IN walks WITHIN 2"),
                1 => format!("FIND 3 NEAREST TO walks.s{i} IN walks"),
                2 => format!("FIND SUBSEQUENCE OF walks.s{i} IN walks WITHIN 50 WINDOW 32"),
                _ => "JOIN walks WITHIN 1.5 APPLY mavg(4) USING INDEX".to_string(),
            })
            .collect();
        let want: Vec<_> = queries.iter().map(|q| cat.run(q)).collect();
        for threads in [1usize, 2, 4] {
            let (got, summary) = cat.run_batch(queries.clone(), threads);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(summary.queries, 12);
            assert_eq!(summary.errors, 0);
            assert_eq!(summary.threads, threads);
            assert!(summary.nodes_visited > 0);
        }
        // Errors occupy their slot without sinking the batch.
        let (mixed, summary) = cat.run_batch(
            vec![
                "FIND 1 NEAREST TO walks.s0 IN walks".to_string(),
                "FIND 1 NEAREST TO walks.nope IN walks".to_string(),
            ],
            2,
        );
        assert!(mixed[0].is_ok());
        assert!(matches!(mixed[1], Err(LangError::Resolve(_))));
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn shared_catalog_recovers_from_poisoned_outer_lock() {
        let shared = SharedCatalog::new(catalog());
        // Poison the catalog-level RwLock itself: a thread panics while
        // holding the *write* guard (the worst case — a reader guard
        // never poisons a std RwLock). With `.unwrap()` instead of
        // poison recovery, every subsequent query and registration
        // would panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.inner.write().unwrap();
            panic!("writer dies mid-registration");
        }));
        assert!(result.is_err());
        assert!(shared.inner.is_poisoned());
        let out = shared.run("FIND 2 NEAREST TO walks.s0 IN walks").unwrap();
        assert_eq!(out.rows.len(), 2);
        shared
            .register(
                SeriesRelation::from_series("more", RandomWalkGenerator::new(11).relation(5, 32))
                    .unwrap(),
            )
            .unwrap();
        assert!(shared.run("FIND 1 NEAREST TO more.s0 IN more").is_ok());
    }

    #[test]
    fn shared_catalog_concurrent_readers_and_writer() {
        let shared = SharedCatalog::new(catalog());
        let q = "FIND 4 NEAREST TO walks.s3 IN walks";
        let want = shared.run(q).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = shared.clone();
                let want = &want;
                scope.spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(&shared.run(q).unwrap(), want);
                    }
                });
            }
            let writer = shared.clone();
            scope.spawn(move || {
                let rel = SeriesRelation::from_series(
                    "other",
                    RandomWalkGenerator::new(9).relation(6, 32),
                )
                .unwrap();
                writer.register(rel).unwrap();
            });
        });
        assert!(shared.run("FIND 1 NEAREST TO other.s0 IN other").is_ok());
        shared.with_relation("other", |rel| assert_eq!(rel.unwrap().len(), 6));
    }

    #[test]
    fn unknown_names_resolve_errors() {
        let cat = catalog();
        assert!(matches!(
            cat.run("FIND SIMILAR TO walks.nope IN walks WITHIN 1"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("FIND SIMILAR TO walks.s0 IN nothere WITHIN 1"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY frobnicate"),
            Err(LangError::Resolve(_))
        ));
    }

    #[test]
    fn transform_argument_validation() {
        let cat = catalog();
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg(0)"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg(100)"),
            Err(LangError::Resolve(_))
        ));
    }

    #[test]
    fn composition_left_to_right() {
        let t = resolve_transforms(
            &[
                TransformSpec {
                    name: "mavg".into(),
                    args: vec![4.0],
                },
                TransformSpec {
                    name: "reverse".into(),
                    args: vec![],
                },
            ],
            32,
        )
        .unwrap();
        assert_eq!(t.name(), "reverse . mavg(4)");
    }

    #[test]
    fn warp_composition_rejected_via_engine_error() {
        let err = resolve_transforms(
            &[
                TransformSpec {
                    name: "warp".into(),
                    args: vec![2.0],
                },
                TransformSpec {
                    name: "reverse".into(),
                    args: vec![],
                },
            ],
            16,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LangError::Engine(tsq_core::Error::Unsupported(_))
        ));
    }

    /// A fresh catalog rebuilt from `cat`'s current (post-append) data —
    /// the oracle every incremental path is compared against.
    fn rebuilt(cat: &Catalog, name: &str) -> Catalog {
        let rel = cat.relation(name).unwrap();
        let items: Vec<(String, TimeSeries)> = (0..rel.len())
            .map(|id| {
                (
                    rel.label(id).unwrap().to_string(),
                    rel.get(id).unwrap().clone(),
                )
            })
            .collect();
        let mut fresh = Catalog::new();
        fresh
            .register(SeriesRelation::from_labeled(name, items).unwrap())
            .unwrap();
        fresh
    }

    /// Sorts subsequence rows into a canonical order (tree traversal
    /// order may differ between an incrementally-extended index and a
    /// fresh build; the row *set* may not).
    fn canonical(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|x, y| {
            (x.distance.to_bits(), &x.a, x.offset).cmp(&(y.distance.to_bits(), &y.a, y.offset))
        });
        rows
    }

    #[test]
    fn append_matches_a_freshly_built_catalog() {
        let mut cat = catalog();
        // Prime the ST-index cache *before* appending, so the cached
        // index answers through the incremental extension path. The probe
        // is a stored window, so it keeps matching data before and after
        // the appends.
        let probe: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s2")
            .unwrap()
            .values()[5..13]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let sub_q = format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 5 WINDOW 8",
            probe.join(", ")
        );
        let sub_q = sub_q.as_str();
        cat.run(sub_q).unwrap();
        // Single-series append first, then a batched catch-up so the
        // relation ends uniform at length 35.
        let out = cat
            .run_mut("APPEND walks s0 VALUES (1.5, -0.25, 2.0)")
            .unwrap();
        assert_eq!(out.plan, "Append");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].a, "s0");
        assert_eq!(out.rows[0].offset, Some(35));
        assert_eq!(out.rows[0].distance, 3.0);
        let batch: Vec<String> = (1..60)
            .map(|i| format!("(s{i}, 0.5, {i}.25, -3)"))
            .collect();
        let out = cat
            .run_mut(&format!("APPEND walks CSV {}", batch.join(" ")))
            .unwrap();
        assert_eq!(out.rows.len(), 59);
        let fresh = rebuilt(&cat, "walks");
        // Whole-series forms are *byte-identical* to the fresh build —
        // rows, every counter, and the rendered EXPLAIN ANALYZE plan —
        // because the incremental path repacks canonically.
        for q in [
            "FIND SIMILAR TO walks.s0 IN walks WITHIN 2",
            "FIND SIMILAR TO walks.s0 IN walks WITHIN 0.5",
            "FIND 5 NEAREST TO walks.s7 IN walks",
            "JOIN walks WITHIN 1.5 APPLY mavg(4)",
            "JOIN walks WITHIN 1.5 APPLY mavg(4) USING INDEX",
            "EXPLAIN ANALYZE FIND SIMILAR TO walks.s0 IN walks WITHIN 0.5",
            "EXPLAIN ANALYZE JOIN walks WITHIN 1.5 APPLY mavg(4)",
        ] {
            assert_eq!(cat.run(q).unwrap(), fresh.run(q).unwrap(), "{q}");
        }
        // Subsequence forms: identical answer rows and identical
        // candidate-level counters (same entry set ⇒ same candidates,
        // refines and false hits); only the node layout — and therefore
        // nodes_visited / disk_accesses — may differ.
        let a = cat.run(sub_q).unwrap();
        let b = fresh.run(sub_q).unwrap();
        assert!(!a.rows.is_empty());
        assert_eq!(canonical(a.rows), canonical(b.rows));
        assert_eq!(a.stats.candidates, b.stats.candidates);
        assert_eq!(a.stats.refined, b.stats.refined);
        assert_eq!(a.stats.false_hits, b.stats.false_hits);
        let knn_q =
            "FIND 4 NEAREST SUBSEQUENCE OF [0.5, 1, 1.5, 1, 0.5, 0, -0.5, -1] IN walks WINDOW 8";
        let a = cat.run(knn_q).unwrap();
        let b = fresh.run(knn_q).unwrap();
        assert_eq!(canonical(a.rows), canonical(b.rows));
        // The appended windows are really in the cached index: a probe
        // matching the appended tail of s0 hits at its exact offset.
        let tail: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s0")
            .unwrap()
            .values()[27..35]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let probe = format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 0.001 WINDOW 8",
            tail.join(", ")
        );
        let hit = cat.run(&probe).unwrap();
        assert!(hit
            .rows
            .iter()
            .any(|r| r.a == "s0" && r.offset == Some(27) && r.distance < 1e-9));
    }

    #[test]
    fn ragged_relation_gates_whole_series_queries_until_healed() {
        let mut cat = catalog();
        cat.run_mut("APPEND walks s0 VALUES (7, 8)").unwrap();
        // Whole-series forms are rejected with the typed raggedness error…
        for q in [
            "FIND SIMILAR TO walks.s1 IN walks WITHIN 2",
            "FIND 3 NEAREST TO walks.s1 IN walks",
            "JOIN walks WITHIN 1 USING SCAN",
        ] {
            assert!(
                matches!(
                    cat.run(q),
                    Err(LangError::Engine(tsq_core::Error::Ragged {
                        min: 32,
                        max: 34
                    }))
                ),
                "{q}"
            );
        }
        // …while subsequence queries keep working throughout…
        assert!(cat
            .run("FIND SUBSEQUENCE OF [7, 8, 7, 8, 7, 8, 7, 8] IN walks WITHIN 10 WINDOW 8")
            .is_ok());
        // …and catching the other series up heals the relation.
        let batch: Vec<String> = (1..60).map(|i| format!("(s{i}, 7, 8)")).collect();
        cat.run_mut(&format!("APPEND walks CSV {}", batch.join(" ")))
            .unwrap();
        assert!(cat
            .run("FIND SIMILAR TO walks.s1 IN walks WITHIN 2")
            .is_ok());
    }

    #[test]
    fn append_is_atomic_on_every_rejection() {
        let mut cat = catalog();
        let sub_q =
            "FIND SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WITHIN 10 WINDOW 8";
        cat.run(sub_q).unwrap();
        let range_q = "FIND SIMILAR TO walks.s0 IN walks WITHIN 2";
        let before_range = cat.run(range_q).unwrap();
        let before_sub = cat.run(sub_q).unwrap();
        let before_bytes = cat.snapshot_bytes().unwrap();
        // Unknown relation.
        assert!(matches!(
            cat.run_mut("APPEND nope s0 VALUES (1)"),
            Err(LangError::Resolve(_))
        ));
        // Non-finite value mid-batch (unreachable through the lexer, so
        // hostile programmatic input): the *whole* statement is rejected —
        // the valid first row must not have been applied.
        let err = cat
            .append(
                "walks",
                &[
                    AppendRow {
                        label: "s0".into(),
                        values: vec![1.0, 2.0],
                    },
                    AppendRow {
                        label: "s1".into(),
                        values: vec![3.0, f64::NAN],
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            LangError::Engine(tsq_core::Error::NonFinite { .. })
        ));
        // A new series too short for the feature schema (k = 2 needs at
        // least 3 points), batched behind a valid row: also atomic.
        assert!(matches!(
            cat.run_mut("APPEND walks CSV (s0, 1, 2) (newcomer, 5)"),
            Err(LangError::Engine(tsq_core::Error::InvalidCutoff { .. }))
        ));
        // Empty-values rows are parser-unreachable; programmatic form:
        assert!(matches!(
            cat.append(
                "walks",
                &[AppendRow {
                    label: "s0".into(),
                    values: Vec::new(),
                }]
            ),
            Err(LangError::Resolve(_))
        ));
        // Relation, indexes and cache are exactly as they were.
        assert!(cat
            .relation("walks")
            .unwrap()
            .get_by_label("newcomer")
            .is_none());
        assert_eq!(cat.run(range_q).unwrap(), before_range);
        assert_eq!(cat.run(sub_q).unwrap(), before_sub);
        assert_eq!(cat.snapshot_bytes().unwrap(), before_bytes);
    }

    #[test]
    fn append_updates_cached_st_index_in_place() {
        let key = ("walks".to_string(), 8usize);
        let mut cat = catalog();
        cat.run("FIND SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WITHIN 10 WINDOW 8")
            .unwrap();
        let ptr_before = Arc::as_ptr(cat.cache_read().map[&key].index.as_whole().unwrap());
        cat.run_mut("APPEND walks s0 VALUES (1, 2, 3)").unwrap();
        // Still cached (never retain-dropped), updated in place (sole
        // owner ⇒ Arc::make_mut did not clone).
        assert_eq!(cat.subseq_cache_len(), 1);
        {
            let cache = cat.cache_read();
            let index = cache.map[&key].index.as_whole().unwrap();
            assert_eq!(Arc::as_ptr(index), ptr_before);
            assert_eq!(index.series(0).unwrap().len(), 35);
        }
        // An in-flight reader holding the Arc keeps its consistent
        // pre-append snapshot while the cache moves on (clone-on-write).
        let held = Arc::clone(cat.cache_read().map[&key].index.as_whole().unwrap());
        cat.run_mut("APPEND walks s0 VALUES (4)").unwrap();
        assert_eq!(held.series(0).unwrap().len(), 35);
        assert_eq!(
            cat.cache_read().map[&key]
                .index
                .as_whole()
                .unwrap()
                .series(0)
                .unwrap()
                .len(),
            36
        );
    }

    #[test]
    fn append_creates_new_series_and_batches_sequentially() {
        let mut cat = catalog();
        // One new label split across three rows of one CSV statement:
        // rows apply sequentially, so the series assembles in order.
        let out = cat
            .run_mut("APPEND walks CSV (fresh, 1, 2) (s0, 9) (fresh, 3, 4)")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].a, "fresh");
        assert_eq!(out.rows[0].offset, Some(4));
        assert_eq!(out.rows[0].distance, 4.0);
        assert_eq!(out.rows[1].a, "s0");
        assert_eq!(out.rows[1].offset, Some(33));
        let rel = cat.relation("walks").unwrap();
        assert_eq!(rel.len(), 61);
        assert_eq!(
            rel.get_by_label("fresh").unwrap().values(),
            &[1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn immutable_execute_rejects_append_with_guidance() {
        let cat = catalog();
        let q = crate::parser::parse("APPEND walks s0 VALUES (1)").unwrap();
        match cat.execute(&q) {
            Err(LangError::Resolve(msg)) => assert!(msg.contains("run_mut")),
            other => panic!("unexpected {other:?}"),
        }
        // `run` (read-only by design) reports the same guidance.
        assert!(matches!(
            cat.run("APPEND walks s0 VALUES (1)"),
            Err(LangError::Resolve(_))
        ));
    }

    #[test]
    fn shared_catalog_append_interleaves_with_readers() {
        let shared = SharedCatalog::new(catalog());
        // APPEND routes through the write lock transparently via `run`.
        let out = shared.run("APPEND walks s0 VALUES (1, 2)").unwrap();
        assert_eq!(out.plan, "Append");
        shared.with_relation("walks", |rel| {
            assert_eq!(rel.unwrap().get_by_label("s0").unwrap().len(), 34);
        });
        // Concurrent appenders and readers: every append is atomic under
        // the write lock, so the final length is exact and every
        // interleaved read sees a consistent catalog.
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        shared
                            .run(&format!("APPEND walks s0 VALUES ({}.5)", t * 8 + i))
                            .unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let shared = shared.clone();
                scope.spawn(move || {
                    for _ in 0..16 {
                        // Raggedness is a legal transient answer; anything
                        // else must succeed.
                        match shared.run("FIND SUBSEQUENCE OF [1, 2, 3, 4, 3, 2, 1, 0] IN walks WITHIN 5 WINDOW 8")
                        {
                            Ok(_) => {}
                            Err(e) => panic!("reader failed: {e}"),
                        }
                    }
                });
            }
        });
        shared.with_relation("walks", |rel| {
            assert_eq!(rel.unwrap().get_by_label("s0").unwrap().len(), 34 + 32);
        });
    }

    #[test]
    fn where_window_filters() {
        let cat = catalog();
        let all = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100")
            .unwrap();
        let filtered = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100 WHERE STD BETWEEN 0 AND 1")
            .unwrap();
        assert!(filtered.rows.len() <= all.rows.len());
    }

    /// Every query form a sharded relation must answer identically to the
    /// unsharded engine.
    const SHARD_QUERIES: &[&str] = &[
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 8",
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 8 APPLY mavg(5)",
        "FIND 7 NEAREST TO walks.s3 IN walks",
        "JOIN walks WITHIN 6",
        "JOIN walks WITHIN 6 USING INDEX",
        "FIND SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WITHIN 6 WINDOW 8",
        "FIND 9 NEAREST SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WINDOW 8",
    ];

    #[test]
    fn sharded_answers_match_unsharded_for_every_form() {
        let baseline = catalog();
        for by in ["HASH", "RANGE"] {
            for count in [2usize, 3, 8] {
                let mut cat = catalog();
                let out = cat
                    .run_mut(&format!("SHARD walks INTO {count} BY {by}"))
                    .unwrap();
                assert_eq!(out.rows.len(), count);
                assert_eq!(out.plan, "Shard");
                for q in SHARD_QUERIES {
                    let want = baseline.run(q).unwrap();
                    let got = cat.run(q).unwrap();
                    assert_eq!(got.rows, want.rows, "{by}/{count}: {q}");
                    // Merged counters are the exact sum of the per-shard
                    // breakdown.
                    assert_eq!(got.shard_stats.len(), count, "{q}");
                    assert_eq!(got.stats, ExecStats::sum(&got.shard_stats), "{q}");
                }
            }
        }
    }

    #[test]
    fn sharded_force_scan_stats_equal_unsharded() {
        // Scan counters are structure-independent, so sharding must also
        // preserve the *statistics*, not just the rows.
        let baseline = catalog();
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 4 BY HASH").unwrap();
        for q in [
            "FIND SIMILAR TO walks.s0 IN walks WITHIN 8 WITH (force = scan)",
            "FIND 7 NEAREST TO walks.s3 IN walks WITH (force = scan)",
        ] {
            let want = baseline.run(q).unwrap();
            let got = cat.run(q).unwrap();
            assert_eq!(got.rows, want.rows, "{q}");
            assert_eq!(got.stats, want.stats, "{q}");
        }
    }

    #[test]
    fn shard_into_one_restores_unsharded_execution() {
        let baseline = catalog();
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 4 BY RANGE").unwrap();
        cat.run_mut("SHARD walks INTO 1 BY HASH").unwrap();
        for q in SHARD_QUERIES {
            let want = baseline.run(q).unwrap();
            let got = cat.run(q).unwrap();
            assert_eq!(got, want, "{q}");
            assert!(got.shard_stats.is_empty(), "{q}");
        }
    }

    #[test]
    fn with_threads_and_shards_do_not_change_answers() {
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 4 BY HASH").unwrap();
        let plain = cat.run("FIND 7 NEAREST TO walks.s3 IN walks").unwrap();
        for q in [
            "FIND 7 NEAREST TO walks.s3 IN walks WITH (threads = 2)",
            "FIND 7 NEAREST TO walks.s3 IN walks WITH (shards = 1)",
            "FIND 7 NEAREST TO walks.s3 IN walks WITH (threads = 3, shards = 2)",
        ] {
            let got = cat.run(q).unwrap();
            assert_eq!(got.rows, plain.rows, "{q}");
            assert_eq!(got.stats, plain.stats, "{q}");
        }
    }

    #[test]
    fn sharded_append_matches_fresh_sharded_build() {
        let mut live = catalog();
        live.run_mut("SHARD walks INTO 3 BY HASH").unwrap();
        live.run_mut("APPEND walks CSV (s0, 1.5, 2.5) (brand_new, 9, 8, 7) (s11, -1)")
            .unwrap();

        let mut fresh = catalog();
        fresh
            .run_mut("APPEND walks CSV (s0, 1.5, 2.5) (brand_new, 9, 8, 7) (s11, -1)")
            .unwrap();
        fresh.run_mut("SHARD walks INTO 3 BY HASH").unwrap();

        // The relation is now ragged, so only subsequence forms run.
        let q = "FIND SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WITHIN 6 WINDOW 8";
        assert_eq!(live.run(q).unwrap().rows, fresh.run(q).unwrap().rows);
        // Heal to uniform length and compare a whole-series form too.
        let heal: Vec<String> = {
            let rel = live.relation("walks").unwrap();
            (0..rel.len())
                .filter_map(|id| {
                    let label = rel.label(id).unwrap();
                    let len = rel.get_by_label(label).unwrap().len();
                    let longest = 37; // 32 + 2 appended + headroom
                    (len < longest).then(|| {
                        let pad = vec!["0"; longest - len].join(", ");
                        format!("APPEND walks {label} VALUES ({pad})")
                    })
                })
                .collect()
        };
        for stmt in &heal {
            live.run_mut(stmt).unwrap();
            fresh.run_mut(stmt).unwrap();
        }
        let q = "FIND 5 NEAREST TO walks.s3 IN walks";
        assert_eq!(live.run(q).unwrap().rows, fresh.run(q).unwrap().rows);
    }

    #[test]
    fn sharded_explain_renders_per_shard_plans_and_totals() {
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 3 BY HASH").unwrap();
        let out = cat
            .run("EXPLAIN FIND SIMILAR TO walks.s0 IN walks WITHIN 8")
            .unwrap();
        let text = out.explain.as_deref().unwrap();
        assert!(text.contains("sharded: 3 shard(s) by hash"), "{text}");
        assert!(text.contains("shard 0:"), "{text}");
        assert!(out.rows.is_empty());
        assert!(out.plan.starts_with("Sharded(3):"), "{}", out.plan);

        let out = cat
            .run("EXPLAIN ANALYZE FIND SIMILAR TO walks.s0 IN walks WITHIN 8")
            .unwrap();
        let text = out.explain.as_deref().unwrap();
        assert!(text.contains("shard 0 actual: rows="), "{text}");
        assert!(text.contains("total actual: rows="), "{text}");
        assert_eq!(out.shard_stats.len(), 3);
        assert_eq!(out.stats, ExecStats::sum(&out.shard_stats));
    }

    #[test]
    fn immutable_execute_rejects_shard_with_guidance() {
        let cat = catalog();
        let q = crate::parser::parse("SHARD walks INTO 2 BY HASH").unwrap();
        match cat.execute(&q) {
            Err(LangError::Resolve(msg)) => {
                assert!(msg.contains("run_mut"), "{msg}")
            }
            other => panic!("expected guidance, got {other:?}"),
        }
        // The shared catalog routes it to the write path instead.
        let shared = SharedCatalog::new(catalog());
        assert_eq!(
            shared.run("SHARD walks INTO 2 BY HASH").unwrap().rows.len(),
            2
        );
        assert!(shared
            .run("FIND 3 NEAREST TO walks.s0 IN walks")
            .unwrap()
            .plan
            .starts_with("Sharded(2):"));
    }

    #[test]
    fn shard_on_paged_relation_is_rejected() {
        let dir = std::env::temp_dir().join(format!("tsq-shard-paged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.tsq");
        catalog().save(&path).unwrap();
        let mut cat = Catalog::new();
        cat.open_paged(&path, 4).unwrap();
        match cat.run_mut("SHARD walks INTO 2 BY HASH") {
            Err(LangError::Engine(tsq_core::Error::Unsupported(msg))) => {
                assert!(msg.contains("paged"), "{msg}")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_snapshot_round_trips_byte_identically() {
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 3 BY RANGE").unwrap();
        // Populate a sharded ST cache entry; it is derived state and must
        // not leak into the snapshot.
        cat.run("FIND SUBSEQUENCE OF [1, 2, 1.5, -0.5, 0, 2, 1, 0.25] IN walks WITHIN 6 WINDOW 8")
            .unwrap();
        let bytes = cat.snapshot_bytes().unwrap();
        let mut restored = Catalog::new();
        restored.restore_bytes(&bytes).unwrap();
        assert_eq!(
            restored.shard_layout("walks"),
            cat.shard_layout("walks"),
            "shard layout survives the round trip"
        );
        for q in SHARD_QUERIES {
            let want = cat.run(q).unwrap();
            let got = restored.run(q).unwrap();
            assert_eq!(got, want, "{q}");
        }
        // save → open → save reproduces the file byte for byte.
        assert_eq!(restored.snapshot_bytes().unwrap(), bytes);
    }

    #[test]
    fn sharded_paged_open_serves_identical_answers() {
        let dir = std::env::temp_dir().join(format!("tsq-shard-paged-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.tsq");
        let mut cat = catalog();
        cat.run_mut("SHARD walks INTO 3 BY HASH").unwrap();
        cat.save(&path).unwrap();
        let mut paged = Catalog::new();
        paged.open_paged(&path, 4).unwrap();
        for q in SHARD_QUERIES {
            let want = cat.run(q).unwrap();
            let got = paged.run(q).unwrap();
            assert_eq!(got.rows, want.rows, "{q}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
