//! Planning and execution: AST → `tsq-core` calls.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tsq_core::{
    IndexConfig, LinearTransform, QueryWindow, ScanMode, SeriesRelation, SimilarityIndex,
    SubseqConfig, SubseqIndex,
};
use tsq_series::TimeSeries;

use crate::ast::{JoinMethod, Query, Source, TransformSpec, WindowSpec};
use crate::error::LangError;

/// A catalog of named relations with lazily-built similarity indexes.
///
/// Whole-sequence indexes are built eagerly at registration (every query
/// form needs one); subsequence ST-indexes depend on the query's `WINDOW`
/// length, so they are built on first use and cached per
/// `(relation, window)` behind a mutex — `execute` stays `&self`.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: HashMap<String, SeriesRelation>,
    indexes: HashMap<String, SimilarityIndex>,
    subseq: Mutex<HashMap<(String, usize), Arc<SubseqIndex>>>,
    config: IndexConfig,
}

impl Catalog {
    /// Creates an empty catalog with the default index configuration.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a catalog whose indexes use `config`.
    pub fn with_config(config: IndexConfig) -> Self {
        Catalog {
            config,
            ..Catalog::default()
        }
    }

    /// Registers a relation (replacing any previous one of the same name)
    /// and builds its index.
    ///
    /// # Errors
    /// Propagates index-construction failures.
    pub fn register(&mut self, relation: SeriesRelation) -> Result<(), LangError> {
        let name = relation.name().to_string();
        let index = relation.index(self.config)?;
        self.subseq
            .lock()
            .expect("subseq cache poisoned")
            .retain(|(rel, _), _| rel != &name);
        self.relations.insert(name.clone(), relation);
        self.indexes.insert(name, index);
        Ok(())
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Option<&SeriesRelation> {
        self.relations.get(name)
    }

    fn resolve_relation(&self, name: &str) -> Result<(&SeriesRelation, &SimilarityIndex), LangError> {
        match (self.relations.get(name), self.indexes.get(name)) {
            (Some(r), Some(i)) => Ok((r, i)),
            _ => Err(LangError::Resolve(format!("unknown relation {name:?}"))),
        }
    }

    fn resolve_source(&self, source: &Source) -> Result<TimeSeries, LangError> {
        match source {
            Source::Literal(values) => Ok(TimeSeries::new(values.clone())),
            Source::Ref { relation, label } => {
                let rel = self
                    .relations
                    .get(relation)
                    .ok_or_else(|| LangError::Resolve(format!("unknown relation {relation:?}")))?;
                rel.get_by_label(label)
                    .cloned()
                    .ok_or_else(|| {
                        LangError::Resolve(format!("unknown series {relation}.{label}"))
                    })
            }
        }
    }

    /// Returns the ST-index over `rel` for `window`, building and caching
    /// it on first use. The (potentially expensive) build happens outside
    /// the cache lock, so concurrent cache hits are never blocked behind
    /// it; if two threads race on the same miss, the first finished build
    /// wins and the other is dropped — both are equivalent.
    fn subseq_index(
        &self,
        rel: &SeriesRelation,
        window: usize,
    ) -> Result<Arc<SubseqIndex>, LangError> {
        let key = (rel.name().to_string(), window);
        if let Some(idx) = self.subseq.lock().expect("subseq cache poisoned").get(&key) {
            return Ok(Arc::clone(idx));
        }
        let idx = Arc::new(SubseqIndex::build(
            SubseqConfig::new(window),
            rel.series().to_vec(),
        )?);
        Ok(Arc::clone(
            self.subseq
                .lock()
                .expect("subseq cache poisoned")
                .entry(key)
                .or_insert(idx),
        ))
    }

    /// Parses and executes a query.
    pub fn run(&self, src: &str) -> Result<QueryOutput, LangError> {
        let query = crate::parser::parse(src)?;
        self.execute(&query)
    }

    /// Executes a parsed query.
    pub fn execute(&self, query: &Query) -> Result<QueryOutput, LangError> {
        match query {
            Query::Similar {
                source,
                relation,
                eps,
                transforms,
                window,
            } => {
                let (rel, index) = self.resolve_relation(relation)?;
                let q = self.resolve_source(source)?;
                let t = resolve_transforms(transforms, index.series_len())?;
                let w = to_window(window);
                let (matches, stats) = index.range_query(&q, *eps, &t, &w)?;
                Ok(QueryOutput {
                    rows: matches
                        .into_iter()
                        .map(|m| Row {
                            a: rel.label(m.id).unwrap_or("?").to_string(),
                            b: None,
                            offset: None,
                            distance: m.distance,
                        })
                        .collect(),
                    nodes_visited: stats.index.nodes_visited,
                })
            }
            Query::Nearest {
                source,
                relation,
                k,
                transforms,
            } => {
                let (rel, index) = self.resolve_relation(relation)?;
                let q = self.resolve_source(source)?;
                let t = resolve_transforms(transforms, index.series_len())?;
                let (matches, stats) = index.knn_query(&q, *k, &t)?;
                Ok(QueryOutput {
                    rows: matches
                        .into_iter()
                        .map(|m| Row {
                            a: rel.label(m.id).unwrap_or("?").to_string(),
                            b: None,
                            offset: None,
                            distance: m.distance,
                        })
                        .collect(),
                    nodes_visited: stats.index.nodes_visited,
                })
            }
            Query::Join {
                relation,
                eps,
                transforms,
                method,
            } => {
                let (rel, index) = self.resolve_relation(relation)?;
                let t = resolve_transforms(transforms, index.series_len())?;
                let outcome = match method {
                    JoinMethod::ScanFull => index.join_scan(*eps, &t, ScanMode::Naive)?,
                    JoinMethod::Scan => index.join_scan(*eps, &t, ScanMode::EarlyAbandon)?,
                    JoinMethod::Index => index.join_index(*eps, &t)?,
                    JoinMethod::Tree => index.join_tree(*eps, &t)?,
                };
                Ok(QueryOutput {
                    rows: outcome
                        .pairs
                        .into_iter()
                        .map(|p| Row {
                            a: rel.label(p.a).unwrap_or("?").to_string(),
                            b: Some(rel.label(p.b).unwrap_or("?").to_string()),
                            offset: None,
                            distance: p.distance,
                        })
                        .collect(),
                    nodes_visited: outcome.stats.index.nodes_visited,
                })
            }
            Query::SubseqSimilar {
                source,
                relation,
                eps,
                window,
            } => {
                let (rel, _) = self.resolve_relation(relation)?;
                let index = self.subseq_index(rel, *window)?;
                let q = self.resolve_source(source)?;
                let (matches, stats) = index.subseq_range(&q, *eps)?;
                Ok(subseq_output(rel, matches, stats.index.nodes_visited))
            }
            Query::SubseqNearest {
                source,
                relation,
                k,
                window,
            } => {
                let (rel, _) = self.resolve_relation(relation)?;
                let index = self.subseq_index(rel, *window)?;
                let q = self.resolve_source(source)?;
                let (matches, stats) = index.subseq_knn(&q, *k)?;
                Ok(subseq_output(rel, matches, stats.index.nodes_visited))
            }
        }
    }
}

fn subseq_output(
    rel: &SeriesRelation,
    matches: Vec<tsq_core::SubseqMatch>,
    nodes_visited: u64,
) -> QueryOutput {
    QueryOutput {
        rows: matches
            .into_iter()
            .map(|m| Row {
                a: rel.label(m.series).unwrap_or("?").to_string(),
                b: None,
                offset: Some(m.offset),
                distance: m.distance,
            })
            .collect(),
        nodes_visited,
    }
}

/// One output row: a label (and a second one for joins) plus the distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// First (or only) series label.
    pub a: String,
    /// Second label for join rows.
    pub b: Option<String>,
    /// Window offset for subsequence rows.
    pub offset: Option<usize>,
    /// Exact distance.
    pub distance: f64,
}

/// Query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Answer rows.
    pub rows: Vec<Row>,
    /// Simulated disk accesses of the index traversal (0 for scans).
    pub nodes_visited: u64,
}

fn to_window(w: &WindowSpec) -> QueryWindow {
    QueryWindow {
        mean: w.mean,
        std: w.std,
    }
}

/// Resolves the APPLY list to a single composed transformation for series
/// length `n`. Transformations compose left to right; `warp(m)` must be
/// the only transformation (it changes the series length).
pub fn resolve_transforms(specs: &[TransformSpec], n: usize) -> Result<LinearTransform, LangError> {
    if specs.is_empty() {
        return Ok(LinearTransform::identity(n));
    }
    let mut result: Option<LinearTransform> = None;
    for spec in specs {
        let t = resolve_one(spec, n)?;
        result = Some(match result {
            None => t,
            Some(prev) => prev.then(&t)?,
        });
    }
    Ok(result.expect("non-empty specs"))
}

fn resolve_one(spec: &TransformSpec, n: usize) -> Result<LinearTransform, LangError> {
    let arity = |want: usize| -> Result<(), LangError> {
        if spec.args.len() == want {
            Ok(())
        } else {
            Err(LangError::Resolve(format!(
                "{} expects {want} argument(s), got {}",
                spec.name,
                spec.args.len()
            )))
        }
    };
    let positive_int = |v: f64, what: &str| -> Result<usize, LangError> {
        if v.fract() == 0.0 && v >= 1.0 {
            Ok(v as usize)
        } else {
            Err(LangError::Resolve(format!(
                "{what} must be a positive integer, got {v}"
            )))
        }
    };
    match spec.name.as_str() {
        "identity" => {
            arity(0)?;
            Ok(LinearTransform::identity(n))
        }
        "mavg" => {
            arity(1)?;
            let w = positive_int(spec.args[0], "mavg window")?;
            if w > n {
                return Err(LangError::Resolve(format!(
                    "mavg window {w} exceeds series length {n}"
                )));
            }
            Ok(LinearTransform::moving_average(n, w))
        }
        "wmavg" => {
            if spec.args.is_empty() || spec.args.len() > n {
                return Err(LangError::Resolve(
                    "wmavg expects between 1 and n weights".to_string(),
                ));
            }
            Ok(LinearTransform::weighted_moving_average(n, &spec.args))
        }
        "reverse" => {
            arity(0)?;
            Ok(LinearTransform::reverse(n))
        }
        "shift" => {
            arity(1)?;
            Ok(LinearTransform::shift(n, spec.args[0]))
        }
        "scale" => {
            arity(1)?;
            Ok(LinearTransform::scale(n, spec.args[0]))
        }
        "warp" => {
            arity(1)?;
            let m = positive_int(spec.args[0], "warp factor")?;
            Ok(LinearTransform::time_warp(n, m))
        }
        other => Err(LangError::Resolve(format!("unknown transformation {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::generate::RandomWalkGenerator;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rel = SeriesRelation::from_series(
            "walks",
            RandomWalkGenerator::new(51).relation(60, 32),
        )
        .unwrap();
        cat.register(rel).unwrap();
        cat
    }

    #[test]
    fn similar_query_runs() {
        let cat = catalog();
        // Identity: the query series matches itself at distance zero.
        let out = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 2")
            .unwrap();
        assert!(out.rows.iter().any(|r| r.a == "s0" && r.distance < 1e-9));
        assert!(out.nodes_visited > 0);
        // With a data-side transformation the self-distance is
        // D(mavg(nf(s0)), nf(s0)) — nonzero; the query must still run and
        // agree with the sequential scan.
        let smoothed = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 5 APPLY mavg(4)")
            .unwrap();
        assert!(!smoothed.rows.is_empty());
    }

    #[test]
    fn nearest_query_runs() {
        let cat = catalog();
        let out = cat.run("FIND 4 NEAREST TO walks.s3 IN walks").unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0].a, "s3");
    }

    #[test]
    fn literal_source() {
        let cat = catalog();
        let values: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s1")
            .unwrap()
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let q = format!(
            "FIND 1 NEAREST TO [{}] IN walks",
            values.join(", ")
        );
        let out = cat.run(&q).unwrap();
        assert_eq!(out.rows[0].a, "s1");
        assert!(out.rows[0].distance < 1e-9);
    }

    #[test]
    fn join_methods_agree() {
        let cat = catalog();
        let scan = cat.run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING SCAN").unwrap();
        let index = cat.run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING INDEX").unwrap();
        let tree = cat.run("JOIN walks WITHIN 1.5 APPLY mavg(4) USING TREE").unwrap();
        // Scan reports each pair once; index/tree twice.
        assert_eq!(index.rows.len(), 2 * scan.rows.len());
        assert_eq!(tree.rows.len(), index.rows.len());
    }

    #[test]
    fn subsequence_query_runs() {
        let cat = catalog();
        // A stored window matches itself at distance zero.
        let probe: Vec<String> = cat
            .relation("walks")
            .unwrap()
            .get_by_label("s2")
            .unwrap()
            .values()[5..13]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let q = format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 0.001 WINDOW 8",
            probe.join(", ")
        );
        let out = cat.run(&q).unwrap();
        assert!(out
            .rows
            .iter()
            .any(|r| r.a == "s2" && r.offset == Some(5) && r.distance < 1e-9));
        // Nearest form: the same window is the 1-NN.
        let qn = format!(
            "FIND 1 NEAREST SUBSEQUENCE OF [{}] IN walks WINDOW 8",
            probe.join(", ")
        );
        let near = cat.run(&qn).unwrap();
        assert_eq!(near.rows.len(), 1);
        assert_eq!(near.rows[0].a, "s2");
        assert_eq!(near.rows[0].offset, Some(5));
    }

    #[test]
    fn subsequence_query_length_must_match_window() {
        let cat = catalog();
        let err = cat
            .run("FIND SUBSEQUENCE OF [1, 2, 3] IN walks WITHIN 1 WINDOW 8")
            .unwrap_err();
        assert!(matches!(
            err,
            LangError::Engine(tsq_core::Error::LengthMismatch { expected: 8, got: 3 })
        ));
    }

    #[test]
    fn subseq_index_is_cached_per_window() {
        let cat = catalog();
        let q = "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 32";
        let a = cat.run(q).unwrap();
        let b = cat.run(q).unwrap();
        assert_eq!(a, b);
        let cache = cat.subseq.lock().unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.contains_key(&("walks".to_string(), 32)));
    }

    #[test]
    fn register_invalidates_subseq_cache() {
        let mut cat = catalog();
        cat.run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 32")
            .unwrap();
        assert_eq!(cat.subseq.lock().unwrap().len(), 1);
        let replacement = SeriesRelation::from_series(
            "walks",
            RandomWalkGenerator::new(77).relation(10, 32),
        )
        .unwrap();
        cat.register(replacement).unwrap();
        assert!(cat.subseq.lock().unwrap().is_empty());
    }

    #[test]
    fn unknown_names_resolve_errors() {
        let cat = catalog();
        assert!(matches!(
            cat.run("FIND SIMILAR TO walks.nope IN walks WITHIN 1"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("FIND SIMILAR TO walks.s0 IN nothere WITHIN 1"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY frobnicate"),
            Err(LangError::Resolve(_))
        ));
    }

    #[test]
    fn transform_argument_validation() {
        let cat = catalog();
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg(0)"),
            Err(LangError::Resolve(_))
        ));
        assert!(matches!(
            cat.run("JOIN walks WITHIN 1 APPLY mavg(100)"),
            Err(LangError::Resolve(_))
        ));
    }

    #[test]
    fn composition_left_to_right() {
        let t = resolve_transforms(
            &[
                TransformSpec { name: "mavg".into(), args: vec![4.0] },
                TransformSpec { name: "reverse".into(), args: vec![] },
            ],
            32,
        )
        .unwrap();
        assert_eq!(t.name(), "reverse . mavg(4)");
    }

    #[test]
    fn warp_composition_rejected_via_engine_error() {
        let err = resolve_transforms(
            &[
                TransformSpec { name: "warp".into(), args: vec![2.0] },
                TransformSpec { name: "reverse".into(), args: vec![] },
            ],
            16,
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Engine(tsq_core::Error::Unsupported(_))));
    }

    #[test]
    fn where_window_filters() {
        let cat = catalog();
        let all = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100")
            .unwrap();
        let filtered = cat
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100 WHERE STD BETWEEN 0 AND 1")
            .unwrap();
        assert!(filtered.rows.len() <= all.rows.len());
    }
}
