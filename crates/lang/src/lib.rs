//! # tsq-lang — a query language for similarity-based time-series queries
//!
//! A concrete realization of the (P, T, L) framework of Jagadish,
//! Mendelzon & Milo that the paper specializes (Section 1.2): the pattern
//! language P denotes constant objects (literal sequences, labeled stored
//! series) or whole relations; the transformation language T names members
//! of the paper's linear-transformation class (`mavg`, `reverse`, `shift`,
//! `scale`, `warp`, compositions); and the query language L offers range
//! (`FIND SIMILAR`), nearest-neighbor (`FIND k NEAREST`) and all-pairs
//! (`JOIN`) forms.
//!
//! ```text
//! FIND SIMILAR TO stocks.BBA IN stocks WITHIN 2.75 APPLY mavg(20)
//! FIND 5 NEAREST TO [36, 38, 40, ...] IN stocks APPLY reverse
//! JOIN stocks WITHIN 1.5 APPLY mavg(20) USING INDEX
//! EXPLAIN ANALYZE FIND SIMILAR TO stocks.BBA IN stocks WITHIN 2.75
//! APPEND stocks BBA VALUES (41.5, 42.25)
//! ```
//!
//! Every query runs through the cost-based planner
//! ([`tsq_core::plan`]): the AST lowers to a `LogicalPlan`, catalog
//! statistics cost each access path (scan, early-abandoning scan, index
//! filter-and-refine, transformed-MBR traversal), and the cheapest
//! physical plan executes. The `WITH (force = ..., threads = ...,
//! shards = ...)` clause is the unified override surface (`USING` remains
//! a deprecated alias for `WITH (force = ...)`); `EXPLAIN [ANALYZE]`
//! renders the choice with estimates (and actual counters).
//!
//! Relations can be repartitioned with `SHARD <rel> INTO <n> BY
//! HASH|RANGE`: queries then run scatter-gather over per-shard indexes
//! ([`tsq_core::shard`]) with answers byte-identical to the unsharded
//! engine.
//!
//! Queries run against a [`Catalog`] of named [`tsq_core::SeriesRelation`]s
//! whose similarity indexes are built on registration. [`SharedCatalog`]
//! makes one catalog safely shareable across any number of client threads,
//! and [`Catalog::run_batch`] fans a batch of queries over a worker pool
//! with per-batch [`BatchSummary`] statistics.
//!
//! Relations are live: the `APPEND` verb ([`Catalog::append`], routed
//! automatically by [`Catalog::run_mut`] and [`SharedCatalog::run`])
//! grows stored series point by point, maintaining the whole-series
//! index and every cached subsequence ST-index *incrementally* — answers
//! afterwards are identical to a catalog rebuilt from the final data.
//!
//! Catalogs are durable: [`Catalog::save`] snapshots every relation,
//! whole-match index (R\*-tree structure preserved byte-identically) and
//! cached subsequence ST-index to one checksummed binary file, and
//! [`Catalog::open`] / [`Catalog::load`] restore it with query results —
//! and traversal statistics — guaranteed identical to the saved catalog.
//! The shell exposes this as `.save <path>` / `.open <path>` and a
//! `tsq --snapshot <path>` startup flag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod serve;
mod snapshot;
pub mod token;

pub use ast::{AppendRow, Query, Source, TransformSpec, WindowSpec};
pub use error::LangError;
pub use exec::{BatchSummary, Catalog, QueryOutput, Row, SharedCatalog};
pub use parser::{parse, parse_with_notices};
pub use serve::serve;
