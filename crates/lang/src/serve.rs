//! Bridges the query language to `tsq-service`: implements the server's
//! [`Engine`] trait for [`SharedCatalog`] and offers a one-call
//! [`serve`] helper the shell's `.serve` / `--serve` paths use.
//!
//! The batch path deliberately routes through
//! [`SharedCatalog::run_batch`], which takes the catalog read lock *per
//! query*: a `register` issued while the server chews a long batch only
//! waits for the handful of queries in flight, never for the whole
//! batch.

use tsq_service::engine::{Engine, EngineError, IngestRow, QueryReply, WireRow};
use tsq_service::{Server, ServerHandle, ServiceConfig};

use crate::error::LangError;
use crate::exec::{QueryOutput, Row, SharedCatalog};

fn to_wire_row(row: &Row) -> WireRow {
    WireRow {
        a: row.a.clone(),
        b: row.b.clone(),
        offset: row.offset.map(|o| o as u64),
        distance: row.distance,
    }
}

fn to_reply(out: &QueryOutput) -> QueryReply {
    QueryReply {
        rows: out.rows.iter().map(to_wire_row).collect(),
        plan: out.plan.clone(),
        stats: out.stats,
        shard_stats: out.shard_stats.clone(),
    }
}

fn to_engine_error(err: LangError) -> EngineError {
    match err {
        LangError::Lex { .. } | LangError::Parse { .. } | LangError::Resolve(_) => {
            EngineError::BadQuery(err.to_string())
        }
        // A refused capability (APPEND to a paged relation) is neither
        // the client's syntax nor an execution failure — it gets its own
        // wire code so clients can branch on it.
        LangError::Engine(tsq_core::Error::Unsupported(_)) => {
            EngineError::Unsupported(err.to_string())
        }
        LangError::Engine(_) => EngineError::Failed(err.to_string()),
    }
}

impl Engine for SharedCatalog {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        self.run(query)
            .map(|out| to_reply(&out))
            .map_err(to_engine_error)
    }

    fn execute_batch(
        &self,
        queries: Vec<String>,
        threads: usize,
    ) -> Vec<Result<QueryReply, EngineError>> {
        let (results, _) = self.run_batch(queries, threads);
        results
            .into_iter()
            .map(|r| r.map(|out| to_reply(&out)).map_err(to_engine_error))
            .collect()
    }

    fn append(&self, relation: &str, rows: Vec<IngestRow>) -> Result<QueryReply, EngineError> {
        let rows: Vec<crate::ast::AppendRow> = rows
            .into_iter()
            .map(|r| crate::ast::AppendRow {
                label: r.label,
                values: r.values,
            })
            .collect();
        self.write()
            .append(relation, &rows)
            .map(|out| to_reply(&out))
            .map_err(to_engine_error)
    }
}

/// Starts a [`tsq_service::Server`] over a shared catalog.
///
/// # Errors
/// Propagates socket bind failures.
pub fn serve(
    addr: &str,
    catalog: SharedCatalog,
    config: ServiceConfig,
) -> std::io::Result<ServerHandle> {
    Server::start(addr, catalog, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Catalog;
    use tsq_core::SeriesRelation;
    use tsq_series::generate::RandomWalkGenerator;

    fn small_catalog() -> SharedCatalog {
        let rel =
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(7).relation(16, 16))
                .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(rel).unwrap();
        SharedCatalog::new(catalog)
    }

    #[test]
    fn shared_catalog_implements_engine() {
        let engine = small_catalog();
        let reply = Engine::execute(&engine, "FIND 3 NEAREST TO walks.s0 IN walks").unwrap();
        assert_eq!(reply.rows.len(), 3);
        assert_eq!(reply.rows[0].a, "s0");
        assert!(!reply.plan.is_empty());

        match Engine::execute(&engine, "FIND SIMILAR GARBAGE") {
            Err(EngineError::BadQuery(_)) => {}
            other => panic!("expected BadQuery, got {other:?}"),
        }
        match Engine::execute(&engine, "FIND 1 NEAREST TO nope.s0 IN nope") {
            Err(EngineError::BadQuery(m)) => assert!(m.contains("nope")),
            other => panic!("expected BadQuery, got {other:?}"),
        }
    }

    #[test]
    fn engine_append_is_live_and_typed() {
        let engine = small_catalog();
        // Two points for every series in one atomic statement, so the
        // relation stays uniform and whole-series queries keep working.
        let rows: Vec<IngestRow> = (0..16)
            .map(|i| IngestRow {
                label: format!("s{i}"),
                values: vec![1.5, -0.25],
            })
            .collect();
        let reply = Engine::append(&engine, "walks", rows).unwrap();
        assert_eq!(reply.plan, "Append");
        assert_eq!(reply.rows.len(), 16);
        assert_eq!(reply.rows[0].a, "s0");
        assert_eq!(reply.rows[0].offset, Some(18));
        assert_eq!(reply.rows[0].distance, 2.0);

        // The appended points are immediately visible to queries served
        // from the same engine.
        let q = Engine::execute(&engine, "FIND 1 NEAREST TO walks.s0 IN walks");
        assert_eq!(q.unwrap().rows[0].a, "s0");

        match Engine::append(
            &engine,
            "nope",
            vec![IngestRow {
                label: "s0".into(),
                values: vec![1.0],
            }],
        ) {
            Err(EngineError::BadQuery(m)) => assert!(m.contains("nope")),
            other => panic!("expected BadQuery, got {other:?}"),
        }
    }

    #[test]
    fn engine_batch_answers_in_order() {
        let engine = small_catalog();
        let queries = vec![
            "FIND 1 NEAREST TO walks.s0 IN walks".to_string(),
            "BAD QUERY".to_string(),
            "FIND 2 NEAREST TO walks.s1 IN walks".to_string(),
        ];
        let slots = Engine::execute_batch(&engine, queries, 2);
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].as_ref().unwrap().rows[0].a, "s0");
        assert!(matches!(slots[1], Err(EngineError::BadQuery(_))));
        assert_eq!(slots[2].as_ref().unwrap().rows.len(), 2);
    }
}
