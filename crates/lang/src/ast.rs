//! Abstract syntax of the query language.
//!
//! The language is the (P, T, L) specialization the paper describes
//! (Section 1.2): patterns are either constant objects (a literal sequence
//! or a labeled series) or whole relations; transformations are named
//! members of the paper's linear-transformation class; and the query
//! language offers range, nearest-neighbor and all-pairs forms.

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `FIND SIMILAR TO <source> IN <relation> WITHIN <eps> [APPLY ...]
    /// [WHERE ...]` — range query.
    Similar {
        /// Query object.
        source: Source,
        /// Relation searched.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Transformations applied to the data side, in order.
        transforms: Vec<TransformSpec>,
        /// Optional mean/std windows.
        window: WindowSpec,
    },
    /// `FIND <k> NEAREST TO <source> IN <relation> [APPLY ...]`.
    Nearest {
        /// Query object.
        source: Source,
        /// Relation searched.
        relation: String,
        /// Number of neighbors.
        k: usize,
        /// Transformations applied to the data side.
        transforms: Vec<TransformSpec>,
    },
    /// `JOIN <relation> WITHIN <eps> [APPLY ...] [USING <method>]`.
    Join {
        /// Relation self-joined.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Transformations applied to both sides.
        transforms: Vec<TransformSpec>,
        /// Execution strategy.
        method: JoinMethod,
    },
    /// `FIND SUBSEQUENCE OF <source> IN <relation> WITHIN <eps> WINDOW <w>`
    /// — subsequence range query over the ST-index: every window of length
    /// `w` in the relation within `eps` of the query.
    SubseqSimilar {
        /// Query object (must be exactly `window` values long).
        source: Source,
        /// Relation searched.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Sliding-window length.
        window: usize,
    },
    /// `FIND <k> NEAREST SUBSEQUENCE OF <source> IN <relation> WINDOW <w>`
    /// — the `k` windows closest to the query, over all series and offsets.
    SubseqNearest {
        /// Query object (must be exactly `window` values long).
        source: Source,
        /// Relation searched.
        relation: String,
        /// Number of neighbors.
        k: usize,
        /// Sliding-window length.
        window: usize,
    },
    /// `EXPLAIN [ANALYZE] <query>` — show the planner's chosen physical
    /// plan with cost estimates. The plain form never executes the inner
    /// query; `ANALYZE` runs it and appends the actual counters.
    Explain {
        /// Execute the inner query and report actual counters.
        analyze: bool,
        /// The query being explained (never itself an `Explain`).
        query: Box<Query>,
    },
    /// `APPEND <relation> <label> VALUES (v1, v2, ...)` or the batched
    /// `APPEND <relation> CSV (label, v1, ...) (label, v1, ...)` —
    /// streaming ingest. The statement is atomic: either every row is
    /// applied (and every index maintained incrementally) or none is.
    Append {
        /// Relation receiving the points.
        relation: String,
        /// Appended rows, in statement order. The same label may appear
        /// more than once; its rows apply sequentially.
        rows: Vec<AppendRow>,
    },
}

/// One row of an `APPEND` statement: values for the tail of one series.
/// An unknown label starts a new series in the relation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRow {
    /// Series label.
    pub label: String,
    /// Values appended to that series, in order.
    pub values: Vec<f64>,
}

/// The query object of a FIND.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `relation.label` — a stored series.
    Ref {
        /// Relation name.
        relation: String,
        /// Series label.
        label: String,
    },
    /// `[v1, v2, ...]` — an inline literal sequence.
    Literal(Vec<f64>),
}

/// A named transformation with numeric arguments, e.g. `mavg(20)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSpec {
    /// Lower-cased name.
    pub name: String,
    /// Arguments.
    pub args: Vec<f64>,
}

/// Mean/std windows from the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSpec {
    /// `MEAN BETWEEN a AND b`.
    pub mean: Option<(f64, f64)>,
    /// `STD BETWEEN a AND b`.
    pub std: Option<(f64, f64)>,
}

/// Join strategies (Table 1 methods). Without a `USING` clause the
/// cost-based planner picks the strategy — and canonicalizes the answer to
/// one row per unordered pair, so the choice can never change the result.
/// An explicit `USING` keeps that method's historical accounting (index
/// and tree joins report each pair twice, as the paper tabulates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// Let the planner choose (the default when `USING` is absent).
    #[default]
    Auto,
    /// Sequential scan with full distances (method a).
    ScanFull,
    /// Sequential scan with early abandoning (method b).
    Scan,
    /// Index-nested-loop over the transformed index (methods c/d).
    Index,
    /// Synchronized tree↔tree join (extension).
    Tree,
}
