//! Abstract syntax of the query language.
//!
//! The language is the (P, T, L) specialization the paper describes
//! (Section 1.2): patterns are either constant objects (a literal sequence
//! or a labeled series) or whole relations; transformations are named
//! members of the paper's linear-transformation class; and the query
//! language offers range, nearest-neighbor and all-pairs forms.
//!
//! Every query form carries a [`QueryOptions`] parsed from the unified
//! `WITH (force = ..., threads = ..., shards = ...)` clause — the one
//! override surface for access-path forcing, worker-thread counts, and
//! scatter width. The legacy `JOIN ... USING <method>` hint still parses
//! as a deprecated alias that lowers to `WITH (force = <method>)`.

use tsq_core::shard::ShardBy;
use tsq_core::QueryOptions;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `FIND SIMILAR TO <source> IN <relation> WITHIN <eps> [APPLY ...]
    /// [WHERE ...] [WITH (...)]` — range query.
    Similar {
        /// Query object.
        source: Source,
        /// Relation searched.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Transformations applied to the data side, in order.
        transforms: Vec<TransformSpec>,
        /// Optional mean/std windows.
        window: WindowSpec,
        /// Execution overrides from the `WITH (...)` clause.
        options: QueryOptions,
    },
    /// `FIND <k> NEAREST TO <source> IN <relation> [APPLY ...] [WITH (...)]`.
    Nearest {
        /// Query object.
        source: Source,
        /// Relation searched.
        relation: String,
        /// Number of neighbors.
        k: usize,
        /// Transformations applied to the data side.
        transforms: Vec<TransformSpec>,
        /// Execution overrides from the `WITH (...)` clause.
        options: QueryOptions,
    },
    /// `JOIN <relation> WITHIN <eps> [APPLY ...] [USING <method>]
    /// [WITH (...)]`. `USING <m>` is a deprecated alias for
    /// `WITH (force = <m>)` and keeps that method's historical Table-1
    /// accounting (index and tree joins report each pair twice).
    Join {
        /// Relation self-joined.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Transformations applied to both sides.
        transforms: Vec<TransformSpec>,
        /// Execution overrides (`force` selects the join method).
        options: QueryOptions,
    },
    /// `FIND SUBSEQUENCE OF <source> IN <relation> WITHIN <eps> WINDOW <w>
    /// [WITH (...)]` — subsequence range query over the ST-index: every
    /// window of length `w` in the relation within `eps` of the query.
    SubseqSimilar {
        /// Query object (must be exactly `window` values long).
        source: Source,
        /// Relation searched.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Sliding-window length.
        window: usize,
        /// Execution overrides from the `WITH (...)` clause.
        options: QueryOptions,
    },
    /// `FIND <k> NEAREST SUBSEQUENCE OF <source> IN <relation> WINDOW <w>
    /// [WITH (...)]` — the `k` windows closest to the query, over all
    /// series and offsets.
    SubseqNearest {
        /// Query object (must be exactly `window` values long).
        source: Source,
        /// Relation searched.
        relation: String,
        /// Number of neighbors.
        k: usize,
        /// Sliding-window length.
        window: usize,
        /// Execution overrides from the `WITH (...)` clause.
        options: QueryOptions,
    },
    /// `EXPLAIN [ANALYZE] <query>` — show the planner's chosen physical
    /// plan with cost estimates. The plain form never executes the inner
    /// query; `ANALYZE` runs it and appends the actual counters.
    Explain {
        /// Execute the inner query and report actual counters.
        analyze: bool,
        /// The query being explained (never itself an `Explain`).
        query: Box<Query>,
    },
    /// `APPEND <relation> <label> VALUES (v1, v2, ...)` or the batched
    /// `APPEND <relation> CSV (label, v1, ...) (label, v1, ...)` —
    /// streaming ingest. The statement is atomic: either every row is
    /// applied (and every index maintained incrementally) or none is.
    Append {
        /// Relation receiving the points.
        relation: String,
        /// Appended rows, in statement order. The same label may appear
        /// more than once; its rows apply sequentially.
        rows: Vec<AppendRow>,
    },
    /// `SHARD <relation> INTO <n> BY HASH|RANGE` — repartition a relation
    /// into `n` per-shard indexes for scatter-gather execution. `INTO 1`
    /// collapses back to a single unsharded index.
    Shard {
        /// Relation repartitioned.
        relation: String,
        /// Number of shards.
        count: usize,
        /// Label-assignment rule.
        by: ShardBy,
    },
}

impl Query {
    /// The `WITH (...)` execution overrides this statement carries
    /// (`EXPLAIN` forwards its inner query's; mutations have none).
    pub fn options(&self) -> QueryOptions {
        match self {
            Query::Similar { options, .. }
            | Query::Nearest { options, .. }
            | Query::Join { options, .. }
            | Query::SubseqSimilar { options, .. }
            | Query::SubseqNearest { options, .. } => *options,
            Query::Explain { query, .. } => query.options(),
            Query::Append { .. } | Query::Shard { .. } => QueryOptions::default(),
        }
    }
}

/// One row of an `APPEND` statement: values for the tail of one series.
/// An unknown label starts a new series in the relation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRow {
    /// Series label.
    pub label: String,
    /// Values appended to that series, in order.
    pub values: Vec<f64>,
}

/// The query object of a FIND.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `relation.label` — a stored series.
    Ref {
        /// Relation name.
        relation: String,
        /// Series label.
        label: String,
    },
    /// `[v1, v2, ...]` — an inline literal sequence.
    Literal(Vec<f64>),
}

/// A named transformation with numeric arguments, e.g. `mavg(20)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSpec {
    /// Lower-cased name.
    pub name: String,
    /// Arguments.
    pub args: Vec<f64>,
}

/// Mean/std windows from the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSpec {
    /// `MEAN BETWEEN a AND b`.
    pub mean: Option<(f64, f64)>,
    /// `STD BETWEEN a AND b`.
    pub std: Option<(f64, f64)>,
}
