//! Tokens of the query language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source text (for error messages).
    pub pos: usize,
    /// The token kind.
    pub kind: TokenKind,
}

/// Token kinds. Keywords are recognized case-insensitively by the parser;
/// the lexer only distinguishes identifiers, numbers and punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Equals => write!(f, "="),
            TokenKind::Eof => write!(f, "<end of input>"),
        }
    }
}
