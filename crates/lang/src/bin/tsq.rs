//! `tsq` — an interactive shell for similarity queries over time-series
//! relations.
//!
//! ```text
//! $ cargo run --release -p tsq-lang --bin tsq
//! tsq> .gen walks rw 1000 128 42
//! tsq> FIND 5 NEAREST TO walks.s17 IN walks APPLY mavg(10)
//! tsq> .load stocks /tmp/prices.csv
//! tsq> JOIN stocks WITHIN 1.5 APPLY mavg(20) USING INDEX
//! tsq> .quit
//! ```
//!
//! Meta-commands start with a dot; everything else is parsed as a query
//! (see `tsq-lang` docs for the grammar).

use std::io::{self, BufRead, Write};
use std::path::Path;

use tsq_core::SeriesRelation;
use tsq_lang::{Catalog, SharedCatalog};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_service::ServiceConfig;

const HELP: &str = "\
usage: tsq [--snapshot <path>] [--serve <addr>]
  --snapshot <path>   start with a catalog restored from a snapshot
  --serve <addr>      serve the catalog over TCP (binary wire protocol +
                      HTTP/JSON on one port) instead of reading stdin;
                      stop it with `tsq-client <addr> shutdown` or
                      `curl -X POST http://<addr>/shutdown`
meta-commands:
  .gen <name> rw <count> <len> [seed]       generate random walks
  .gen <name> stocks <count> <len> [seed]   generate synthetic stocks
  .load <name> <path>                       load a CSV relation (one series per line)
  .save <path>                              snapshot the whole catalog (relations + indexes)
  .open <path>                              restore a snapshot into this catalog
  .open <path> --paged <MiB>                restore with R*-trees behind a paged buffer
                                            pool (<MiB> split evenly across relations);
                                            EXPLAIN ANALYZE then reports measured I/O
  .save <name> <path>                       write one relation back to CSV
  .batch <path> [threads]                   run a file of queries (one per line) on a worker pool
                                            (thread counts are clamped to the machine)
  .ingest <name> <path>                     append a CSV of rows `label, v1, v2, ...` to a
                                            relation as one atomic APPEND statement
  .serve <addr>                             serve this catalog over TCP; Enter stops it
  .rel                                      list registered relations
  .help                                     this text
  .quit                                     exit
queries:
  FIND SIMILAR TO <rel>.<label> IN <rel> WITHIN <eps> [APPLY t1, t2, ...] [WHERE ...]
  FIND <k> NEAREST TO <rel>.<label>|[v1, v2, ...] IN <rel> [APPLY ...]
  FIND SUBSEQUENCE OF [v1, ..., vw] IN <rel> WITHIN <eps> WINDOW <w>
  FIND <k> NEAREST SUBSEQUENCE OF [v1, ..., vw] IN <rel> WINDOW <w>
  JOIN <rel> WITHIN <eps> [APPLY ...] [USING SCAN|SCANFULL|INDEX|TREE]
  every query form accepts a trailing WITH (opt = val, ...) options clause:
    WITH (force = scan|index)   pin the join method (USING is a deprecated alias)
    WITH (threads = n)          cap scatter/batch parallelism
    WITH (shards = n)           cap how many shards are probed in parallel
sharding:
  SHARD <rel> INTO <n> BY HASH|RANGE    split a relation into n shards with one
  R*-tree each; queries scatter to every shard and merge to the same rows,
  order, and counter totals the unsharded engine produces (.rel shows the
  layout; re-SHARD INTO 1 to restore unsharded execution)
ingest:
  APPEND <rel> <label> VALUES (v1, v2, ...)           append points to one series
  APPEND <rel> CSV (label, v1, ...) (label, v1, ...)  batched, atomic multi-series append
  appends maintain every index incrementally (no rebuild); an unknown label starts
  a new series; paged relations reject APPEND with a typed error
planning:
  every query runs through the cost-based planner; USING forces a join method
  EXPLAIN <query>            show the chosen plan and cost estimates (no execution)
  EXPLAIN ANALYZE <query>    run the plan and append the actual counters
  e.g.  EXPLAIN FIND SIMILAR TO walks.s0 IN walks WITHIN 2
        EXPLAIN ANALYZE JOIN walks WITHIN 1.5 APPLY mavg(4)
transformations:
  identity | mavg(w) | wmavg(w1, w2, ...) | reverse | shift(c) | scale(c) | warp(m)";

fn main() {
    let mut catalog = Catalog::new();
    let mut names: Vec<String> = Vec::new();
    let mut snapshot: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                println!("{HELP}");
                return;
            }
            "--snapshot" => match args.next() {
                Some(p) => snapshot = Some(p),
                None => {
                    eprintln!("--snapshot requires a path");
                    std::process::exit(2);
                }
            },
            "--serve" => match args.next() {
                Some(a) => serve_addr = Some(a),
                None => {
                    eprintln!("--serve requires an address (e.g. 127.0.0.1:7878)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}; the shell reads queries from stdin");
                eprintln!("{HELP}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &snapshot {
        match Catalog::load(Path::new(path)) {
            Ok(restored) => {
                catalog = restored;
                names = catalog.relation_names();
                println!(
                    "restored {} relation(s) from {path}: {}",
                    names.len(),
                    names.join(", ")
                );
            }
            Err(e) => {
                eprintln!("cannot restore snapshot {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = serve_addr {
        // Headless service mode: no shell, runs until a remote shutdown
        // (binary SHUTDOWN request or POST /shutdown) drains the server.
        let shared = SharedCatalog::new(catalog);
        match tsq_lang::serve(&addr, shared, ServiceConfig::default()) {
            Ok(handle) => {
                println!("serving on {} (binary wire protocol + http)", handle.addr());
                io::stdout().flush().ok();
                let snap = handle.wait();
                println!(
                    "server drained: {} ok, {} error(s), {} timeout(s), \
                     {} tcp request(s), {} http request(s)",
                    snap.queries_ok,
                    snap.queries_err,
                    snap.timeouts,
                    snap.tcp_requests,
                    snap.http_requests
                );
            }
            Err(e) => {
                eprintln!("cannot serve on {addr}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let stdin = io::stdin();
    let interactive = true;
    if interactive {
        println!("tsq — similarity-based queries for time series data (SIGMOD '97)");
        println!("type .help for help, .quit to exit");
    }
    let mut lines = stdin.lock().lines();
    loop {
        print!("tsq> ");
        io::stdout().flush().ok();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            if !meta(rest, &mut catalog, &mut names, &mut lines) {
                break;
            }
            continue;
        }
        match catalog.run_mut(line) {
            Ok(out) => {
                if let Some(explain) = &out.explain {
                    for l in explain.lines() {
                        println!("  {l}");
                    }
                    continue;
                }
                for row in out.rows.iter().take(20) {
                    match (&row.b, row.offset) {
                        (Some(b), _) => {
                            println!("  {}  ~  {}   D = {:.4}", row.a, b, row.distance)
                        }
                        (None, Some(off)) => {
                            println!("  {} @ {}   D = {:.4}", row.a, off, row.distance)
                        }
                        (None, None) => println!("  {}   D = {:.4}", row.a, row.distance),
                    }
                }
                if out.rows.len() > 20 {
                    println!("  ... {} more row(s)", out.rows.len() - 20);
                }
                println!(
                    "  ({} row(s), plan {}, {} candidate(s), {} refined, \
                     {} simulated disk accesses)",
                    out.rows.len(),
                    out.plan,
                    out.stats.candidates,
                    out.stats.refined,
                    out.stats.disk_accesses
                );
                if !out.shard_stats.is_empty() {
                    let per_shard: Vec<String> = out
                        .shard_stats
                        .iter()
                        .map(|s| s.candidates.to_string())
                        .collect();
                    println!(
                        "  (scattered over {} shard(s); candidates per shard: {})",
                        out.shard_stats.len(),
                        per_shard.join("/")
                    );
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }
}

/// Handles a meta-command; returns false to exit the shell. `lines` is
/// the shell's stdin, borrowed so `.serve` can block on "press Enter to
/// stop" without re-locking stdin.
fn meta(
    cmd: &str,
    catalog: &mut Catalog,
    names: &mut Vec<String>,
    lines: &mut impl Iterator<Item = io::Result<String>>,
) -> bool {
    let parts: Vec<&str> = cmd.split_whitespace().collect();
    match parts.as_slice() {
        ["quit"] | ["exit"] | ["q"] => return false,
        ["help"] | ["h"] => println!("{HELP}"),
        ["rel"] => {
            if names.is_empty() {
                println!("  (no relations registered)");
            }
            for n in names.iter() {
                if let Some(rel) = catalog.relation(n) {
                    let layout = match catalog.shard_layout(n) {
                        Some((by, count, sizes)) => {
                            let by = match by {
                                tsq_core::shard::ShardBy::Hash => "hash",
                                tsq_core::shard::ShardBy::Range => "range",
                            };
                            let sizes: Vec<String> =
                                sizes.iter().map(ToString::to_string).collect();
                            format!(", {count} shard(s) by {by} [{}]", sizes.join("/"))
                        }
                        None => String::new(),
                    };
                    match rel.length_range() {
                        Some((lo, hi)) if lo != hi => println!(
                            "  {n}: {} series of lengths {lo}..{hi} (ragged mid-ingest){layout}",
                            rel.len()
                        ),
                        Some((len, _)) => {
                            println!("  {n}: {} series of length {len}{layout}", rel.len())
                        }
                        None => println!("  {n}: 0 series{layout}"),
                    }
                }
            }
        }
        ["gen", name, kind, count, len, rest @ ..] => {
            let seed: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(42);
            let (count, len) = match (count.parse::<usize>(), len.parse::<usize>()) {
                (Ok(c), Ok(l)) if c > 0 && l > 2 => (c, l),
                _ => {
                    println!("  usage: .gen <name> rw|stocks <count> <len> [seed]");
                    return true;
                }
            };
            let series = match *kind {
                "rw" | "walks" => RandomWalkGenerator::new(seed).relation(count, len),
                "stocks" => StockGenerator::new(seed).relation(count, len),
                other => {
                    println!("  unknown generator {other:?} (use rw or stocks)");
                    return true;
                }
            };
            register(catalog, names, name, series);
        }
        ["load", name, path] => match tsq_series::io::load_csv(Path::new(path)) {
            Ok(series) => register(catalog, names, name, series),
            Err(e) => println!("  error: {e}"),
        },
        ["batch", path, rest @ ..] => {
            let threads: usize = match rest.first() {
                None => tsq_core::executor::default_threads(),
                Some(arg) => match arg.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        println!("  thread count must be a positive integer, got {arg:?}");
                        return true;
                    }
                },
            };
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let queries: Vec<String> = text
                        .lines()
                        .map(str::trim)
                        .filter(|l| !l.is_empty() && !l.starts_with('#'))
                        .map(str::to_string)
                        .collect();
                    if queries.is_empty() {
                        println!("  no queries in {path}");
                        return true;
                    }
                    let (results, summary) = catalog.run_batch(queries.clone(), threads);
                    if summary.threads != threads {
                        println!(
                            "  note: clamped {threads} thread(s) to {} \
                             (machine bound; see executor::clamp_threads)",
                            summary.threads
                        );
                    }
                    for (src, result) in queries.iter().zip(&results) {
                        match result {
                            Ok(out) => println!("  ok   {:>6} row(s)  {src}", out.rows.len()),
                            Err(e) => println!("  FAIL {e}  {src}"),
                        }
                    }
                    println!(
                        "  batch: {} quer{} on {} thread(s), {} error(s), {} row(s), \
                         {} candidate(s), {} refined, {} disk accesses, \
                         {:.1} ms ({:.0} q/s)",
                        summary.queries,
                        if summary.queries == 1 { "y" } else { "ies" },
                        summary.threads,
                        summary.errors,
                        summary.rows,
                        summary.candidates,
                        summary.refined,
                        summary.disk_accesses,
                        summary.elapsed.as_secs_f64() * 1e3,
                        summary.queries_per_second()
                    );
                }
                Err(e) => println!("  error: {e}"),
            }
        }
        ["ingest", name, path] => match std::fs::read_to_string(path) {
            Ok(text) => match parse_ingest_rows(&text) {
                Ok(rows) if rows.is_empty() => println!("  no rows in {path}"),
                // One atomic APPEND statement: on any error (unknown
                // relation, paged storage, non-finite values) nothing is
                // applied and the shell keeps running.
                Ok(rows) => match catalog.append(name, &rows) {
                    Ok(out) => {
                        let points: f64 = out.rows.iter().map(|r| r.distance).sum();
                        println!(
                            "  appended {points} point(s) across {} series to {name}",
                            out.rows.len()
                        );
                    }
                    Err(e) => println!("  error: {e}"),
                },
                Err(e) => println!("  error: {e}"),
            },
            Err(e) => println!("  error: {e}"),
        },
        ["save", path] => match catalog.save(Path::new(path)) {
            Ok(bytes) => println!(
                "  snapshot: {} relation(s), {bytes} byte(s) -> {path}",
                catalog.relation_names().len()
            ),
            Err(e) => println!("  error: {e}"),
        },
        ["open", path] => match catalog.open(Path::new(path)) {
            Ok(restored) => {
                for n in &restored {
                    if !names.iter().any(|existing| existing == n) {
                        names.push(n.clone());
                    }
                }
                println!(
                    "  restored {} relation(s) from {path}: {}",
                    restored.len(),
                    restored.join(", ")
                );
            }
            Err(e) => println!("  error: {e}"),
        },
        ["open", path, "--paged", mib] => match mib.parse::<usize>() {
            Ok(mib) if mib > 0 => match catalog.open_paged(Path::new(path), mib) {
                Ok(restored) => {
                    for n in &restored {
                        if !names.iter().any(|existing| existing == n) {
                            names.push(n.clone());
                        }
                    }
                    println!(
                        "  restored {} paged relation(s) from {path} \
                         ({mib} MiB pool budget): {}",
                        restored.len(),
                        restored.join(", ")
                    );
                }
                Err(e) => println!("  error: {e}"),
            },
            _ => println!("  usage: .open <path> --paged <MiB>  (MiB must be a positive integer)"),
        },
        ["serve", addr] => {
            // Move the catalog behind a shared handle for the server's
            // worker threads; it moves back when the server has drained.
            let shared = SharedCatalog::new(std::mem::take(catalog));
            match tsq_lang::serve(addr, shared.clone(), ServiceConfig::default()) {
                Ok(handle) => {
                    println!(
                        "  serving on {} (binary wire protocol + http); \
                         press Enter to stop",
                        handle.addr()
                    );
                    io::stdout().flush().ok();
                    let _ = lines.next();
                    let snap = handle.shutdown();
                    println!(
                        "  server drained: {} ok, {} error(s), {} timeout(s), \
                         {} tcp request(s), {} http request(s)",
                        snap.queries_ok,
                        snap.queries_err,
                        snap.timeouts,
                        snap.tcp_requests,
                        snap.http_requests
                    );
                }
                Err(e) => println!("  error: cannot serve on {addr}: {e}"),
            }
            match shared.into_inner() {
                Ok(inner) => *catalog = inner,
                // Unreachable once the server has joined all workers.
                Err(_) => {
                    *catalog = Catalog::new();
                    println!("  warning: catalog handles leaked; starting fresh");
                }
            }
        }
        ["save", name, path] => match catalog.relation(name) {
            Some(rel) => match tsq_series::io::save_csv(Path::new(path), rel.series()) {
                Ok(()) => println!("  wrote {} series to {path}", rel.len()),
                Err(e) => println!("  error: {e}"),
            },
            None => println!("  unknown relation {name:?}"),
        },
        _ => println!("  unknown meta-command; try .help"),
    }
    true
}

/// Parses `.ingest` CSV text (`label, v1, v2, ...` per line; blank lines
/// and `#` comments skipped) into APPEND rows, with line-numbered errors.
fn parse_ingest_rows(text: &str) -> Result<Vec<tsq_lang::AppendRow>, String> {
    let mut rows = Vec::new();
    for (at, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let label = fields.next().unwrap_or("").to_string();
        if label.is_empty() {
            return Err(format!("line {}: missing series label", at + 1));
        }
        let mut values = Vec::new();
        for field in fields {
            match field.parse::<f64>() {
                Ok(v) => values.push(v),
                Err(_) => return Err(format!("line {}: bad number {field:?}", at + 1)),
            }
        }
        if values.is_empty() {
            return Err(format!("line {}: no values for {label:?}", at + 1));
        }
        rows.push(tsq_lang::AppendRow { label, values });
    }
    Ok(rows)
}

fn register(
    catalog: &mut Catalog,
    names: &mut Vec<String>,
    name: &str,
    series: Vec<tsq_series::TimeSeries>,
) {
    let count = series.len();
    match SeriesRelation::from_series(name, series) {
        Ok(rel) => match catalog.register(rel) {
            Ok(()) => {
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
                println!(
                    "  registered {name} ({count} series); labels are s0..s{}",
                    count - 1
                );
            }
            Err(e) => println!("  error: {e}"),
        },
        Err(e) => println!("  error: {e}"),
    }
}
