//! Tokenizer.

use crate::error::LangError;
use crate::token::{Token, TokenKind};

/// Tokenizes a query string.
///
/// # Errors
/// [`LangError::Lex`] on unexpected characters or malformed numbers.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::Equals,
                });
                i += 1;
            }
            '.' if i + 1 < bytes.len() && !(bytes[i + 1] as char).is_ascii_digit() => {
                tokens.push(Token {
                    pos: i,
                    kind: TokenKind::Dot,
                });
                i += 1;
            }
            '-' | '+' | '.' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    let exp_sign =
                        (d == '-' || d == '+') && matches!(bytes[i - 1] as char, 'e' | 'E');
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || exp_sign {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| LangError::Lex {
                    pos: start,
                    message: format!("malformed number {text:?}"),
                })?;
                // Overflowing literals (1e999) parse to ±∞, which would
                // flow into thresholds and series values as a non-finite
                // number the engine must then reject anyway — fail at the
                // first boundary instead.
                if !value.is_finite() {
                    return Err(LangError::Lex {
                        pos: start,
                        message: format!("number {text:?} overflows f64"),
                    });
                }
                tokens.push(Token {
                    pos: start,
                    kind: TokenKind::Number(value),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    pos: start,
                    kind: TokenKind::Ident(src[start..i].to_string()),
                });
            }
            other => {
                return Err(LangError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token {
        pos: src.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_numbers() {
        assert_eq!(
            kinds("FIND 5 NEAREST"),
            vec![
                TokenKind::Ident("FIND".into()),
                TokenKind::Number(5.0),
                TokenKind::Ident("NEAREST".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn punctuation_and_literals() {
        assert_eq!(
            kinds("mavg(20), [1.5, -2e3]"),
            vec![
                TokenKind::Ident("mavg".into()),
                TokenKind::LParen,
                TokenKind::Number(20.0),
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::LBracket,
                TokenKind::Number(1.5),
                TokenKind::Comma,
                TokenKind::Number(-2000.0),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dotted_reference() {
        assert_eq!(
            kinds("stocks.BBA"),
            vec![
                TokenKind::Ident("stocks".into()),
                TokenKind::Dot,
                TokenKind::Ident("BBA".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn decimal_without_leading_zero() {
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
    }

    #[test]
    fn lex_error_position() {
        match tokenize("FIND ; SIMILAR") {
            Err(LangError::Lex { pos, .. }) => assert_eq!(pos, 5),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn overflowing_literal_rejected() {
        for src in ["1e999", "-1e400", "WITHIN 2e308"] {
            match tokenize(src) {
                Err(LangError::Lex { message, .. }) => {
                    assert!(message.contains("overflows"), "{src}: {message}")
                }
                other => panic!("{src}: expected lex error, got {other:?}"),
            }
        }
        // Large but representable literals still pass.
        assert_eq!(
            kinds("1e300"),
            vec![TokenKind::Number(1e300), TokenKind::Eof]
        );
    }
}
