//! Recursive-descent parser.
//!
//! ```text
//! query        := [EXPLAIN [ANALYZE]] (find_query | join_query)
//!               | append_query | shard_query
//! find_query   := FIND SIMILAR TO source IN ident WITHIN number
//!                 [APPLY tlist] [WHERE window (AND window)*] [with]
//!               | FIND SUBSEQUENCE OF source IN ident WITHIN number
//!                 WINDOW number [with]
//!               | FIND number NEAREST TO source IN ident [APPLY tlist]
//!                 [with]
//!               | FIND number NEAREST SUBSEQUENCE OF source IN ident
//!                 WINDOW number [with]
//! join_query   := JOIN ident WITHIN number [APPLY tlist]
//!                 [USING (SCAN | SCANFULL | INDEX | TREE)] [with]
//! append_query := APPEND ident ident VALUES '(' number (, number)* ')'
//!               | APPEND ident CSV row+ ; row := '(' ident (, number)* ')'
//! shard_query  := SHARD ident INTO number BY (HASH | RANGE)
//! with         := WITH '(' opt (',' opt)* ')'
//! opt          := FORCE '=' (SCAN | SCANFULL | INDEX | TREE)
//!               | THREADS '=' number | SHARDS '=' number
//! source       := ident . ident | '[' number (, number)* ']'
//! tlist        := t (',' t)* ; t := ident [ '(' number (, number)* ')' ]
//! window       := MEAN BETWEEN number AND number
//!               | STD BETWEEN number AND number
//! ```
//!
//! Keywords are case-insensitive; identifiers are case-sensitive.
//! `EXPLAIN` renders the cost-based planner's chosen physical plan without
//! executing; `EXPLAIN ANALYZE` also runs the query and appends the
//! actual counters.
//! The `WITH (...)` clause is the unified override surface
//! ([`QueryOptions`]): `force` pins the access path, `threads` sizes the
//! worker pool, `shards` caps the scatter width on sharded relations.
//! `JOIN ... USING <m>` still parses as a deprecated alias for
//! `WITH (force = <m>)` and emits a deprecation notice (see
//! [`parse_with_notices`]); when both appear, the `WITH` clause wins.
//! Validation the parser performs (so nonsense fails before execution):
//! every `WITHIN` threshold must be non-negative, every `WINDOW` length
//! must be an integer of at least 2, every `APPEND` row must carry at
//! least one value, `WITH` option values must be well-formed, `SHARD`
//! counts must be positive integers, and `EXPLAIN APPEND` /
//! `EXPLAIN SHARD` are rejected (a mutation has no physical plan to
//! show).

use tsq_core::shard::ShardBy;
use tsq_core::{ForceOp, QueryOptions};

use crate::ast::{AppendRow, Query, Source, TransformSpec, WindowSpec};
use crate::error::LangError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a query string.
///
/// # Errors
/// [`LangError::Lex`] / [`LangError::Parse`] with byte positions.
pub fn parse(src: &str) -> Result<Query, LangError> {
    parse_with_notices(src).map(|(q, _)| q)
}

/// Parses a query string and returns any advisory notices alongside the
/// query — currently the `USING` deprecation note. Shells print the
/// notices; programmatic callers may ignore them via [`parse`].
///
/// # Errors
/// [`LangError::Lex`] / [`LangError::Parse`] with byte positions.
pub fn parse_with_notices(src: &str) -> Result<(Query, Vec<String>), LangError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        at: 0,
        notices: Vec::new(),
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok((q, p.notices))
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    notices: Vec<String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, LangError> {
        Err(LangError::Parse {
            pos: self.peek().pos,
            message: message.into(),
        })
    }

    /// Consumes a keyword (case-insensitive) or fails.
    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {kw}, found {}", self.peek().kind))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn take_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    fn number(&mut self) -> Result<f64, LangError> {
        match self.peek().kind {
            TokenKind::Number(n) => {
                self.bump();
                Ok(n)
            }
            ref other => self.error(format!("expected number, found {other}")),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), LangError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_eof(&mut self) -> Result<(), LangError> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            self.error(format!("unexpected trailing input {}", self.peek().kind))
        }
    }

    /// `WITHIN <eps>` with the threshold validated at parse time: a
    /// negative threshold can never match anything, so it is rejected
    /// here rather than silently producing an empty result.
    fn threshold(&mut self) -> Result<f64, LangError> {
        self.expect_kw("WITHIN")?;
        let at = self.peek().pos;
        let eps = self.number()?;
        if eps < 0.0 {
            return Err(LangError::Parse {
                pos: at,
                message: format!("WITHIN threshold must be non-negative, got {eps}"),
            });
        }
        Ok(eps)
    }

    /// `WINDOW <w>` with the length validated at parse time (`w >= 2`,
    /// integral): a one-point window has no spectrum to index.
    fn window_length(&mut self) -> Result<usize, LangError> {
        self.expect_kw("WINDOW")?;
        let at = self.peek().pos;
        let w = self.number()?;
        if w.fract() != 0.0 || w < 2.0 {
            return Err(LangError::Parse {
                pos: at,
                message: format!("WINDOW length must be an integer of at least 2, got {w}"),
            });
        }
        Ok(w as usize)
    }

    fn query(&mut self) -> Result<Query, LangError> {
        if self.take_kw("EXPLAIN") {
            let analyze = self.take_kw("ANALYZE");
            if self.at_kw("EXPLAIN") {
                return self.error("cannot EXPLAIN an EXPLAIN");
            }
            if self.at_kw("APPEND") {
                return self.error("cannot EXPLAIN APPEND: a mutation has no query plan");
            }
            if self.at_kw("SHARD") {
                return self.error("cannot EXPLAIN SHARD: a mutation has no query plan");
            }
            let inner = self.query()?;
            return Ok(Query::Explain {
                analyze,
                query: Box::new(inner),
            });
        }
        if self.take_kw("FIND") {
            self.find_query()
        } else if self.take_kw("JOIN") {
            self.join_query()
        } else if self.take_kw("APPEND") {
            self.append_query()
        } else if self.take_kw("SHARD") {
            self.shard_query()
        } else {
            self.error("expected EXPLAIN, FIND, JOIN, APPEND or SHARD")
        }
    }

    /// `SHARD <relation> INTO <n> BY HASH|RANGE` — repartition a relation.
    fn shard_query(&mut self) -> Result<Query, LangError> {
        let relation = self.ident()?;
        self.expect_kw("INTO")?;
        let count = self.positive_count("SHARD count")?;
        self.expect_kw("BY")?;
        let by = if self.take_kw("HASH") {
            ShardBy::Hash
        } else if self.take_kw("RANGE") {
            ShardBy::Range
        } else {
            return self.error("expected HASH or RANGE after BY");
        };
        Ok(Query::Shard {
            relation,
            count,
            by,
        })
    }

    /// A positive integer count (bounded so the f64 → usize cast is
    /// provably lossless and absurd widths fail at the first boundary).
    fn positive_count(&mut self, what: &str) -> Result<usize, LangError> {
        let at = self.peek().pos;
        let n = self.number()?;
        if n.fract() != 0.0 || !(1.0..=65536.0).contains(&n) {
            return Err(LangError::Parse {
                pos: at,
                message: format!("{what} must be an integer between 1 and 65536, got {n}"),
            });
        }
        Ok(n as usize)
    }

    /// The unified override clause:
    /// `WITH (force = scan|scanfull|index|tree, threads = n, shards = n)`.
    /// Absent clause ⇒ all-default [`QueryOptions`]. Duplicate or unknown
    /// keys are parse errors.
    fn with_clause(&mut self) -> Result<QueryOptions, LangError> {
        let mut options = QueryOptions::default();
        if !self.take_kw("WITH") {
            return Ok(options);
        }
        self.expect(&TokenKind::LParen)?;
        loop {
            let at = self.peek().pos;
            let key = self.ident()?.to_ascii_lowercase();
            self.expect(&TokenKind::Equals)?;
            let duplicate = match key.as_str() {
                "force" => {
                    let was = options.force.is_some();
                    let value = self.ident()?.to_ascii_lowercase();
                    options.force = Some(match value.as_str() {
                        "scan" => ForceOp::Scan,
                        "scanfull" => ForceOp::ScanFull,
                        "index" => ForceOp::Index,
                        "tree" => ForceOp::Tree,
                        other => {
                            return self.error(format!(
                                "force must be scan, scanfull, index or tree, got {other}"
                            ))
                        }
                    });
                    was
                }
                "threads" => {
                    let was = options.threads.is_some();
                    options.threads = Some(self.positive_count("threads")?);
                    was
                }
                "shards" => {
                    let was = options.shards.is_some();
                    options.shards = Some(self.positive_count("shards")?);
                    was
                }
                other => {
                    return Err(LangError::Parse {
                        pos: at,
                        message: format!(
                            "unknown option {other:?}; expected force, threads or shards"
                        ),
                    })
                }
            };
            if duplicate {
                return Err(LangError::Parse {
                    pos: at,
                    message: format!("option {key:?} given twice"),
                });
            }
            if !matches!(self.peek().kind, TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        self.expect(&TokenKind::RParen)?;
        Ok(options)
    }

    /// `APPEND <relation> <label> VALUES (v1, ...)` appends to one series;
    /// `APPEND <relation> CSV (label, v1, ...) (label, v1, ...)` batches
    /// several rows into one atomic statement.
    fn append_query(&mut self) -> Result<Query, LangError> {
        let relation = self.ident()?;
        if self.take_kw("CSV") {
            let mut rows = vec![self.append_row()?];
            while matches!(self.peek().kind, TokenKind::LParen) {
                rows.push(self.append_row()?);
            }
            return Ok(Query::Append { relation, rows });
        }
        let label = self.ident()?;
        self.expect_kw("VALUES")?;
        self.expect(&TokenKind::LParen)?;
        let mut values = vec![self.number()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            values.push(self.number()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Query::Append {
            relation,
            rows: vec![AppendRow { label, values }],
        })
    }

    /// One batched row: `'(' label ',' number (',' number)* ')'`. A row
    /// with no values is rejected — an empty append is always a mistake.
    fn append_row(&mut self) -> Result<AppendRow, LangError> {
        self.expect(&TokenKind::LParen)?;
        let label = self.ident()?;
        let at = self.peek().pos;
        if !matches!(self.peek().kind, TokenKind::Comma) {
            return Err(LangError::Parse {
                pos: at,
                message: format!("APPEND row for {label:?} must carry at least one value"),
            });
        }
        let mut values = Vec::new();
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            values.push(self.number()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(AppendRow { label, values })
    }

    fn find_query(&mut self) -> Result<Query, LangError> {
        if self.take_kw("SIMILAR") {
            self.expect_kw("TO")?;
            let source = self.source()?;
            self.expect_kw("IN")?;
            let relation = self.ident()?;
            let eps = self.threshold()?;
            let transforms = self.apply_clause()?;
            let window = self.where_clause()?;
            let options = self.with_clause()?;
            Ok(Query::Similar {
                source,
                relation,
                eps,
                transforms,
                window,
                options,
            })
        } else if self.take_kw("SUBSEQUENCE") {
            self.expect_kw("OF")?;
            let source = self.source()?;
            self.expect_kw("IN")?;
            let relation = self.ident()?;
            let eps = self.threshold()?;
            let window = self.window_length()?;
            let options = self.with_clause()?;
            Ok(Query::SubseqSimilar {
                source,
                relation,
                eps,
                window,
                options,
            })
        } else if matches!(self.peek().kind, TokenKind::Number(_)) {
            let at = self.peek().pos;
            let kf = self.number()?;
            // `kf as usize` saturates: `FIND 1e20 NEAREST` would silently
            // become k = usize::MAX. Bound the count below the 2^53 range
            // where f64 still represents every integer exactly, so the
            // cast is provably lossless.
            const MAX_K: f64 = (1u64 << 53) as f64;
            if kf.fract() != 0.0 || !(1.0..MAX_K).contains(&kf) {
                return Err(LangError::Parse {
                    pos: at,
                    message: format!(
                        "NEAREST count must be a positive integer below 2^53, got {kf}"
                    ),
                });
            }
            self.expect_kw("NEAREST")?;
            if self.take_kw("SUBSEQUENCE") {
                self.expect_kw("OF")?;
                let source = self.source()?;
                self.expect_kw("IN")?;
                let relation = self.ident()?;
                let window = self.window_length()?;
                let options = self.with_clause()?;
                return Ok(Query::SubseqNearest {
                    source,
                    relation,
                    k: kf as usize,
                    window,
                    options,
                });
            }
            self.expect_kw("TO")?;
            let source = self.source()?;
            self.expect_kw("IN")?;
            let relation = self.ident()?;
            let transforms = self.apply_clause()?;
            let options = self.with_clause()?;
            Ok(Query::Nearest {
                source,
                relation,
                k: kf as usize,
                transforms,
                options,
            })
        } else {
            self.error("expected SIMILAR, SUBSEQUENCE or a neighbor count after FIND")
        }
    }

    fn join_query(&mut self) -> Result<Query, LangError> {
        let relation = self.ident()?;
        let eps = self.threshold()?;
        let transforms = self.apply_clause()?;
        // `USING <m>` is the deprecated alias: it lowers to
        // `WITH (force = <m>)`, keeping the paper's Table-1 accounting for
        // the forced method, and emits a notice. An explicit WITH clause
        // merges over it.
        let mut lowered = QueryOptions::default();
        if self.take_kw("USING") {
            let force = if self.take_kw("SCANFULL") {
                ForceOp::ScanFull
            } else if self.take_kw("SCAN") {
                ForceOp::Scan
            } else if self.take_kw("INDEX") {
                ForceOp::Index
            } else if self.take_kw("TREE") {
                ForceOp::Tree
            } else {
                return self.error("expected SCAN, SCANFULL, INDEX or TREE after USING");
            };
            lowered.force = Some(force);
            self.notices.push(
                "note: USING is deprecated; use WITH (force = scan|scanfull|index|tree) instead"
                    .to_string(),
            );
        }
        let with = self.with_clause()?;
        let options = lowered.merged(&with);
        Ok(Query::Join {
            relation,
            eps,
            transforms,
            options,
        })
    }

    fn source(&mut self) -> Result<Source, LangError> {
        if matches!(self.peek().kind, TokenKind::LBracket) {
            self.bump();
            let mut values = vec![self.number()?];
            while matches!(self.peek().kind, TokenKind::Comma) {
                self.bump();
                values.push(self.number()?);
            }
            self.expect(&TokenKind::RBracket)?;
            return Ok(Source::Literal(values));
        }
        let relation = self.ident()?;
        self.expect(&TokenKind::Dot)?;
        let label = self.ident()?;
        Ok(Source::Ref { relation, label })
    }

    fn apply_clause(&mut self) -> Result<Vec<TransformSpec>, LangError> {
        if !self.take_kw("APPLY") {
            return Ok(Vec::new());
        }
        let mut out = vec![self.transform()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            out.push(self.transform()?);
        }
        Ok(out)
    }

    fn transform(&mut self) -> Result<TransformSpec, LangError> {
        let name = self.ident()?.to_ascii_lowercase();
        let mut args = Vec::new();
        if matches!(self.peek().kind, TokenKind::LParen) {
            self.bump();
            if !matches!(self.peek().kind, TokenKind::RParen) {
                args.push(self.number()?);
                while matches!(self.peek().kind, TokenKind::Comma) {
                    self.bump();
                    args.push(self.number()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(TransformSpec { name, args })
    }

    fn where_clause(&mut self) -> Result<WindowSpec, LangError> {
        let mut window = WindowSpec::default();
        if !self.take_kw("WHERE") {
            return Ok(window);
        }
        loop {
            if self.take_kw("MEAN") {
                window.mean = Some(self.between()?);
            } else if self.take_kw("STD") {
                window.std = Some(self.between()?);
            } else {
                return self.error("expected MEAN or STD in WHERE clause");
            }
            if !self.take_kw("AND") {
                break;
            }
        }
        Ok(window)
    }

    fn between(&mut self) -> Result<(f64, f64), LangError> {
        self.expect_kw("BETWEEN")?;
        let lo = self.number()?;
        self.expect_kw("AND")?;
        let hi = self.number()?;
        if lo > hi {
            return self.error("BETWEEN bounds out of order");
        }
        Ok((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_similar() {
        let q = parse("FIND SIMILAR TO stocks.BBA IN stocks WITHIN 2.75 APPLY mavg(20)").unwrap();
        match q {
            Query::Similar {
                source,
                relation,
                eps,
                transforms,
                window,
                options,
            } => {
                assert!(options.is_default());
                assert_eq!(
                    source,
                    Source::Ref {
                        relation: "stocks".into(),
                        label: "BBA".into()
                    }
                );
                assert_eq!(relation, "stocks");
                assert_eq!(eps, 2.75);
                assert_eq!(
                    transforms,
                    vec![TransformSpec {
                        name: "mavg".into(),
                        args: vec![20.0]
                    }]
                );
                assert_eq!(window, WindowSpec::default());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_nearest_with_literal() {
        let q = parse("find 3 nearest to [1, 2, 3.5] in walks apply reverse").unwrap();
        match q {
            Query::Nearest {
                source,
                relation,
                k,
                transforms,
                options,
            } => {
                assert!(options.is_default());
                assert_eq!(source, Source::Literal(vec![1.0, 2.0, 3.5]));
                assert_eq!(relation, "walks");
                assert_eq!(k, 3);
                assert_eq!(transforms.len(), 1);
                assert_eq!(transforms[0].name, "reverse");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_join_with_method() {
        let (q, notices) =
            parse_with_notices("JOIN stocks WITHIN 1.5 APPLY mavg(20) USING TREE").unwrap();
        match q {
            Query::Join {
                relation,
                eps,
                transforms,
                options,
            } => {
                assert_eq!(relation, "stocks");
                assert_eq!(eps, 1.5);
                assert_eq!(transforms.len(), 1);
                assert_eq!(options.force, Some(ForceOp::Tree));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The deprecated alias produces a notice; the modern spelling
        // parses to the same query silently.
        assert_eq!(notices.len(), 1);
        assert!(notices[0].contains("deprecated"), "{}", notices[0]);
        let (modern, notices) =
            parse_with_notices("JOIN stocks WITHIN 1.5 APPLY mavg(20) WITH (force = tree)")
                .unwrap();
        assert!(notices.is_empty());
        assert_eq!(
            modern,
            parse("JOIN stocks WITHIN 1.5 APPLY mavg(20) USING TREE").unwrap()
        );
    }

    #[test]
    fn parse_with_options_clause() {
        for src in [
            "FIND SIMILAR TO r.a IN r WITHIN 1 WITH (force = scan, threads = 4, shards = 2)",
            "FIND 3 NEAREST TO r.a IN r WITH (force = scan, threads = 4, shards = 2)",
            "JOIN r WITHIN 1 WITH (force = scan, threads = 4, shards = 2)",
            "FIND SUBSEQUENCE OF r.a IN r WITHIN 1 WINDOW 8 WITH (force = scan, threads = 4, shards = 2)",
            "FIND 2 NEAREST SUBSEQUENCE OF r.a IN r WINDOW 8 WITH (force = scan, threads = 4, shards = 2)",
        ] {
            let q = parse(src).unwrap();
            let options = q.options();
            assert_eq!(options.force, Some(ForceOp::Scan), "{src}");
            assert_eq!(options.threads, Some(4), "{src}");
            assert_eq!(options.shards, Some(2), "{src}");
        }
        // Keys are optional and case-insensitive; EXPLAIN forwards the
        // inner query's options.
        let q = parse("EXPLAIN FIND 3 NEAREST TO r.a IN r WITH (THREADS = 2)").unwrap();
        assert_eq!(q.options().threads, Some(2));
        assert_eq!(q.options().force, None);
    }

    #[test]
    fn with_clause_wins_over_using() {
        let q = parse("JOIN r WITHIN 1 USING SCAN WITH (force = index)").unwrap();
        assert_eq!(q.options().force, Some(ForceOp::Index));
        let q = parse("JOIN r WITHIN 1 USING SCAN WITH (threads = 2)").unwrap();
        assert_eq!(q.options().force, Some(ForceOp::Scan));
        assert_eq!(q.options().threads, Some(2));
    }

    #[test]
    fn with_clause_rejects_malformed_forms() {
        for src in [
            "JOIN r WITHIN 1 WITH ()",                             // empty
            "JOIN r WITHIN 1 WITH (force)",                        // no value
            "JOIN r WITHIN 1 WITH (force = hash)",                 // bad value
            "JOIN r WITHIN 1 WITH (threads = 0)",                  // zero
            "JOIN r WITHIN 1 WITH (threads = 2.5)",                // fractional
            "JOIN r WITHIN 1 WITH (shards = -1)",                  // negative
            "JOIN r WITHIN 1 WITH (pool = 4)",                     // unknown key
            "JOIN r WITHIN 1 WITH (threads = 1, threads = 2)",     // duplicate
            "JOIN r WITHIN 1 WITH (threads = 1",                   // unclosed
            "FIND SIMILAR TO r.a IN r WITHIN 1 WITH force = scan", // no parens
        ] {
            assert!(
                matches!(parse(src), Err(LangError::Parse { .. })),
                "{src}: should be a parse error"
            );
        }
    }

    #[test]
    fn parse_shard_statement() {
        assert_eq!(
            parse("SHARD stocks INTO 4 BY HASH").unwrap(),
            Query::Shard {
                relation: "stocks".into(),
                count: 4,
                by: ShardBy::Hash,
            }
        );
        assert_eq!(
            parse("shard stocks into 1 by range").unwrap(),
            Query::Shard {
                relation: "stocks".into(),
                count: 1,
                by: ShardBy::Range,
            }
        );
        for src in [
            "SHARD stocks",                  // no INTO
            "SHARD stocks INTO 0 BY HASH",   // zero shards
            "SHARD stocks INTO 2.5 BY HASH", // fractional
            "SHARD stocks INTO 2 BY MODULO", // unknown rule
            "SHARD stocks INTO 2",           // no BY
            "EXPLAIN SHARD stocks INTO 2 BY HASH",
            "EXPLAIN ANALYZE SHARD stocks INTO 2 BY HASH",
        ] {
            assert!(
                matches!(parse(src), Err(LangError::Parse { .. })),
                "{src}: should be a parse error"
            );
        }
        // A relation may still be named "shard" in query position.
        assert!(parse("JOIN shard WITHIN 1").is_ok());
    }

    #[test]
    fn parse_where_windows() {
        let q = parse(
            "FIND SIMILAR TO r.a IN r WITHIN 1 WHERE MEAN BETWEEN 5 AND 10 AND STD BETWEEN 0 AND 2",
        )
        .unwrap();
        match q {
            Query::Similar { window, .. } => {
                assert_eq!(window.mean, Some((5.0, 10.0)));
                assert_eq!(window.std, Some((0.0, 2.0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_transforms_in_order() {
        let q = parse("JOIN r WITHIN 1 APPLY mavg(5), reverse, scale(-1)").unwrap();
        match q {
            Query::Join { transforms, .. } => {
                let names: Vec<&str> = transforms.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, vec!["mavg", "reverse", "scale"]);
                assert_eq!(transforms[2].args, vec![-1.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_report_positions() {
        assert!(matches!(parse("SELECT 1"), Err(LangError::Parse { .. })));
        assert!(matches!(
            parse("FIND SIMILAR stocks.BBA IN s WITHIN 1"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(
            parse("FIND 0 NEAREST TO r.a IN r"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(
            parse("FIND 2.7 NEAREST TO r.a IN r"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(
            parse("JOIN r WITHIN 1 USING HASH"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(
            parse("FIND SIMILAR TO r.a IN r WITHIN 1 garbage"),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn parse_subsequence_range() {
        let q = parse("FIND SUBSEQUENCE OF [1, 2, 3] IN walks WITHIN 0.5 WINDOW 3").unwrap();
        match q {
            Query::SubseqSimilar {
                source,
                relation,
                eps,
                window,
                options,
            } => {
                assert!(options.is_default());
                assert_eq!(source, Source::Literal(vec![1.0, 2.0, 3.0]));
                assert_eq!(relation, "walks");
                assert_eq!(eps, 0.5);
                assert_eq!(window, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_subsequence_nearest() {
        let q = parse("find 7 nearest subsequence of pats.q IN walks window 16").unwrap();
        match q {
            Query::SubseqNearest {
                source,
                relation,
                k,
                window,
                options,
            } => {
                assert!(options.is_default());
                assert_eq!(
                    source,
                    Source::Ref {
                        relation: "pats".into(),
                        label: "q".into()
                    }
                );
                assert_eq!(relation, "walks");
                assert_eq!(k, 7);
                assert_eq!(window, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_threshold_rejected_at_parse_time() {
        for src in [
            "FIND SIMILAR TO r.a IN r WITHIN -1",
            "FIND SUBSEQUENCE OF r.a IN r WITHIN -0.5 WINDOW 8",
            "JOIN r WITHIN -2",
        ] {
            match parse(src) {
                Err(LangError::Parse { message, .. }) => {
                    assert!(message.contains("non-negative"), "{src}: {message}")
                }
                other => panic!("{src}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_window_rejected_at_parse_time() {
        for src in [
            "FIND SUBSEQUENCE OF r.a IN r WITHIN 1 WINDOW 1",
            "FIND SUBSEQUENCE OF r.a IN r WITHIN 1 WINDOW 0",
            "FIND SUBSEQUENCE OF r.a IN r WITHIN 1 WINDOW 2.5",
            "FIND 3 NEAREST SUBSEQUENCE OF r.a IN r WINDOW 1",
        ] {
            match parse(src) {
                Err(LangError::Parse { message, .. }) => {
                    assert!(message.contains("WINDOW"), "{src}: {message}")
                }
                other => panic!("{src}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn huge_nearest_count_rejected_instead_of_saturating() {
        // `1e20 as usize` saturates to usize::MAX; `2^53` is the first
        // integer whose f64 neighborhood is gappy. Both must be parse
        // errors, not silently-clamped counts.
        for src in [
            "FIND 1e20 NEAREST TO r.a IN r",
            "FIND 9007199254740992 NEAREST TO r.a IN r",
            "FIND 1e20 NEAREST SUBSEQUENCE OF r.a IN r WINDOW 8",
        ] {
            match parse(src) {
                Err(LangError::Parse { pos, message }) => {
                    assert!(message.contains("below 2^53"), "{src}: {message}");
                    assert!(pos > 0, "{src}: error should point at the count");
                }
                other => panic!("{src}: expected parse error, got {other:?}"),
            }
        }
        // The largest exactly-representable counts still parse.
        assert!(parse("FIND 9007199254740991 NEAREST TO r.a IN r").is_ok());
    }

    #[test]
    fn parse_explain_forms() {
        match parse("EXPLAIN FIND 3 NEAREST TO r.a IN r").unwrap() {
            Query::Explain { analyze, query } => {
                assert!(!analyze);
                assert!(matches!(*query, Query::Nearest { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("explain analyze JOIN r WITHIN 1 USING TREE").unwrap() {
            Query::Explain { analyze, query } => {
                assert!(analyze);
                assert!(matches!(*query, Query::Join { .. }));
                assert_eq!(query.options().force, Some(ForceOp::Tree));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Nesting is rejected, and EXPLAIN still needs a query.
        assert!(matches!(
            parse("EXPLAIN EXPLAIN JOIN r WITHIN 1"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(parse("EXPLAIN"), Err(LangError::Parse { .. })));
        // A relation may still be named "explain" (identifiers are only
        // keyword-like in keyword positions).
        assert!(parse("JOIN explain WITHIN 1").is_ok());
    }

    #[test]
    fn join_without_using_is_auto() {
        match parse("JOIN r WITHIN 1").unwrap() {
            Query::Join { options, .. } => assert!(options.is_default()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_append_values() {
        let q = parse("APPEND stocks BBA VALUES (1.5, -2, 3e1)").unwrap();
        assert_eq!(
            q,
            Query::Append {
                relation: "stocks".into(),
                rows: vec![AppendRow {
                    label: "BBA".into(),
                    values: vec![1.5, -2.0, 30.0],
                }],
            }
        );
        // Keywords stay case-insensitive, labels case-sensitive.
        let q = parse("append stocks bba values (7)").unwrap();
        match q {
            Query::Append { rows, .. } => assert_eq!(rows[0].label, "bba"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_append_csv_batch() {
        let q = parse("APPEND stocks CSV (BBA, 1, 2) (ZTR, 3) (BBA, 4)").unwrap();
        match q {
            Query::Append { relation, rows } => {
                assert_eq!(relation, "stocks");
                let got: Vec<(&str, &[f64])> = rows
                    .iter()
                    .map(|r| (r.label.as_str(), r.values.as_slice()))
                    .collect();
                assert_eq!(
                    got,
                    vec![
                        ("BBA", &[1.0, 2.0][..]),
                        ("ZTR", &[3.0][..]),
                        ("BBA", &[4.0][..]),
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn append_rejects_malformed_forms() {
        for src in [
            "APPEND",                          // no relation
            "APPEND stocks",                   // no label
            "APPEND stocks BBA",               // no VALUES
            "APPEND stocks BBA VALUES ()",     // empty values
            "APPEND stocks BBA VALUES (1,)",   // trailing comma
            "APPEND stocks CSV",               // no rows
            "APPEND stocks CSV ()",            // empty row
            "APPEND stocks CSV (BBA)",         // row without values
            "APPEND stocks CSV (BBA, 1) junk", // trailing input
            "APPEND stocks BBA VALUES (1) (2)",
        ] {
            assert!(
                matches!(parse(src), Err(LangError::Parse { .. })),
                "{src}: should be a parse error"
            );
        }
    }

    #[test]
    fn explain_append_rejected_at_parse_time() {
        for src in [
            "EXPLAIN APPEND stocks BBA VALUES (1)",
            "EXPLAIN ANALYZE APPEND stocks CSV (BBA, 1)",
        ] {
            match parse(src) {
                Err(LangError::Parse { message, .. }) => {
                    assert!(message.contains("EXPLAIN APPEND"), "{src}: {message}")
                }
                other => panic!("{src}: expected parse error, got {other:?}"),
            }
        }
        // A relation may still be named "append" in query position.
        assert!(parse("JOIN append WITHIN 1").is_ok());
    }

    #[test]
    fn between_order_checked() {
        assert!(matches!(
            parse("FIND SIMILAR TO r.a IN r WITHIN 1 WHERE MEAN BETWEEN 10 AND 5"),
            Err(LangError::Parse { .. })
        ));
    }
}
