//! Property-based tests for the Fourier substrate.

use proptest::prelude::*;
use tsq_dft::complex::Complex64;
use tsq_dft::convolution::{conv, conv_fft};
use tsq_dft::dft::{dft, idft};
use tsq_dft::energy::{energy_complex, euclidean_complex, euclidean_real};
use tsq_dft::FftPlanner;

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex64::new(re, im)),
        1..=max_len,
    )
}

fn real_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `idft(dft(x)) == x` for arbitrary lengths (exercises naive, radix-2
    /// and Bluestein paths through the planner).
    #[test]
    fn planner_roundtrip(x in complex_vec(200)) {
        let mut planner = FftPlanner::new();
        let spec = planner.dft(&x);
        let back = planner.idft(&spec);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// The planner agrees with the defining sums.
    #[test]
    fn planner_matches_reference(x in complex_vec(64)) {
        let mut planner = FftPlanner::new();
        let fast = planner.dft(&x);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// Parseval: energy is invariant under the unitary DFT.
    #[test]
    fn parseval(x in complex_vec(128)) {
        let spec = dft(&x);
        let et = energy_complex(&x);
        let ef = energy_complex(&spec);
        prop_assert!((et - ef).abs() <= 1e-6 * et.max(1.0));
    }

    /// Distance is invariant under the unitary DFT (Equation 8).
    #[test]
    fn distance_invariance(xy in (1usize..64).prop_flat_map(|n| (
        prop::collection::vec(-1e3f64..1e3, n),
        prop::collection::vec(-1e3f64..1e3, n),
    ))) {
        let (x, y) = xy;
        let dt = euclidean_real(&x, &y);
        let fx: Vec<Complex64> = tsq_dft::dft::dft_real(&x);
        let fy: Vec<Complex64> = tsq_dft::dft::dft_real(&y);
        let df = euclidean_complex(&fx, &fy);
        prop_assert!((dt - df).abs() <= 1e-6 * dt.max(1.0));
    }

    /// Prefix distances are monotone lower bounds of the full distance
    /// (Equation 13 — the heart of Lemma 1).
    #[test]
    fn prefix_lower_bound(xy in (1usize..64).prop_flat_map(|n| (
        prop::collection::vec(-1e3f64..1e3, n),
        prop::collection::vec(-1e3f64..1e3, n),
    ))) {
        let (x, y) = xy;
        let fx = tsq_dft::dft::dft_real(&x);
        let fy = tsq_dft::dft::dft_real(&y);
        let full = euclidean_complex(&fx, &fy);
        let mut prev = 0.0;
        for k in 0..=fx.len() {
            let d = euclidean_complex(&fx[..k], &fy[..k]);
            prop_assert!(d + 1e-9 >= prev, "prefix distance must be monotone");
            prop_assert!(d <= full + 1e-6);
            prev = d;
        }
    }

    /// The FFT-based convolution agrees with the direct sum.
    #[test]
    fn conv_fft_matches_direct(xy in (1usize..48).prop_flat_map(|n| (
        prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), n),
        prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), n),
    ))) {
        let (xr, yr) = xy;
        let x: Vec<Complex64> = xr.into_iter().map(|(a, b)| Complex64::new(a, b)).collect();
        let y: Vec<Complex64> = yr.into_iter().map(|(a, b)| Complex64::new(a, b)).collect();
        let mut planner = FftPlanner::new();
        let direct = conv(&x, &y);
        let fast = conv_fft(&mut planner, &x, &y);
        let scale: f64 = direct.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (d, f) in direct.iter().zip(&fast) {
            prop_assert!((*d - *f).abs() < 1e-7 * scale);
        }
    }

    /// Real input spectra are conjugate-symmetric: X_{n-f} = conj(X_f).
    #[test]
    fn real_input_conjugate_symmetry(x in real_vec(64)) {
        let spec = tsq_dft::dft::dft_real(&x);
        let n = spec.len();
        for f in 1..n {
            let a = spec[f];
            let b = spec[n - f].conj();
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Time-domain circular shift only changes coefficient phases, not
    /// magnitudes.
    #[test]
    fn shift_preserves_magnitudes(x in real_vec(48), s in 0usize..48) {
        let n = x.len();
        let shift = s % n;
        let shifted: Vec<f64> = (0..n).map(|i| x[(i + shift) % n]).collect();
        let fa = tsq_dft::dft::dft_real(&x);
        let fb = tsq_dft::dft::dft_real(&shifted);
        for (a, b) in fa.iter().zip(&fb) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    /// idft is the left inverse of dft for the reference implementation too.
    #[test]
    fn reference_roundtrip(x in complex_vec(48)) {
        let back = idft(&dft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// The sliding DFT agrees with an independently recomputed full DFT at
    /// every window offset, within 1e-9, across random series, window
    /// lengths and coefficient counts. Window lengths are drawn from the
    /// full range, so non-powers-of-two (the planner's Bluestein path for
    /// the recomputed reference) are exercised constantly.
    #[test]
    fn sliding_dft_matches_full_recomputation(input in (2usize..48).prop_flat_map(|w| (
        prop::collection::vec(-1e3f64..1e3, w..w + 220),
        1usize..=8,
        w..=w, // carry the window length alongside the series
    ))) {
        let (x, k, w) = input;
        let k = k.min(w);
        let windows = tsq_dft::sliding::sliding_prefix(&x, w, k);
        prop_assert_eq!(windows.len(), x.len() - w + 1);
        let mut planner = FftPlanner::new();
        for (t, got) in windows.iter().enumerate() {
            // Independent reference: a *full* transform of the window via
            // the planner (radix-2 or Bluestein), truncated to k.
            let full = planner.dft_real(&x[t..t + w]);
            for (g, want) in got.iter().zip(&full) {
                prop_assert!(
                    (*g - *want).abs() < 1e-9,
                    "offset {}, w {}, k {}: {} vs {}", t, w, k, g, want
                );
            }
        }
    }

    /// Sliding coefficients inherit Lemma 1: the prefix distance between
    /// two windows never exceeds their time-domain Euclidean distance.
    #[test]
    fn sliding_prefix_is_lower_bound(input in (2usize..32).prop_flat_map(|w| (
        prop::collection::vec(-1e2f64..1e2, w + 10..w + 120),
        prop::collection::vec(-1e2f64..1e2, w..=w),
        1usize..=6,
        w..=w,
    ))) {
        let (x, q, k, w) = input;
        let k = k.min(w);
        let fq = tsq_dft::dft::dft_prefix(&q, k);
        for (t, fw) in tsq_dft::sliding::sliding_prefix(&x, w, k).iter().enumerate() {
            let prefix = euclidean_complex(fw, &fq);
            let full = euclidean_real(&x[t..t + w], &q);
            prop_assert!(prefix <= full + 1e-6, "offset {}: {} > {}", t, prefix, full);
        }
    }
}
