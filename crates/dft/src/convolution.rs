//! Circular convolution (Equation 4) and the convolution–multiplication
//! property (Equation 6).
//!
//! The paper defines `Conv(x, y)_i = sum_k x_k * y_{i-k}` with indices modulo
//! `n` ("circular convolution"). Under the paper's unitary DFT convention the
//! frequency-domain identity carries a `sqrt(n)` factor:
//!
//! ```text
//! DFT(conv(x, y)) = sqrt(n) * (X .* Y)
//! ```
//!
//! (The paper's Equation 6 elides the constant; tests here pin down the exact
//! relationship, and the transformation constructors in `tsq-core` account
//! for it so that e.g. the moving-average transformation applied in the
//! frequency domain matches the time-domain moving average exactly.)

use crate::complex::{Complex64, ZERO};
use crate::planner::FftPlanner;

/// Direct `O(n^2)` circular convolution of two equal-length real sequences.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn conv_real(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "circular convolution requires equal lengths"
    );
    let n = x.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &xk) in x.iter().enumerate() {
            // y index (i - k) mod n
            let idx = (i + n - k % n) % n;
            acc += xk * y[idx];
        }
        *o = acc;
    }
    out
}

/// Direct `O(n^2)` circular convolution of two equal-length complex
/// sequences.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn conv(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(
        x.len(),
        y.len(),
        "circular convolution requires equal lengths"
    );
    let n = x.len();
    let mut out = vec![ZERO; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = ZERO;
        for (k, &xk) in x.iter().enumerate() {
            let idx = (i + n - k % n) % n;
            acc += xk * y[idx];
        }
        *o = acc;
    }
    out
}

/// `O(n log n)` circular convolution via the frequency domain:
/// `conv(x, y) = sqrt(n) * IDFT(DFT(x) .* DFT(y))`.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn conv_fft(planner: &mut FftPlanner, x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(
        x.len(),
        y.len(),
        "circular convolution requires equal lengths"
    );
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let fx = planner.dft(x);
    let fy = planner.dft(y);
    let mut prod: Vec<Complex64> = fx.iter().zip(&fy).map(|(&a, &b)| a * b).collect();
    let plan = planner.plan(n);
    plan.inverse(&mut prod);
    let s = (n as f64).sqrt();
    for v in &mut prod {
        *v = v.scale(s);
    }
    prod
}

/// `O(n log n)` circular convolution of real sequences via FFT.
pub fn conv_real_fft(planner: &mut FftPlanner, x: &[f64], y: &[f64]) -> Vec<f64> {
    let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    let cy: Vec<Complex64> = y.iter().map(|&v| Complex64::from_real(v)).collect();
    conv_fft(planner, &cx, &cy)
        .into_iter()
        .map(|c| c.re)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, dft_real};

    #[test]
    fn tiny_example_by_hand() {
        // x = [1, 2], y = [3, 4]:
        // out_0 = x0*y0 + x1*y_{-1 mod 2}=y1 -> 1*3 + 2*4 = 11
        // out_1 = x0*y1 + x1*y0 -> 1*4 + 2*3 = 10
        let out = conv_real(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(out, vec![11.0, 10.0]);
    }

    #[test]
    fn identity_kernel() {
        // Convolving with the unit impulse leaves the signal unchanged.
        let x = [5.0, -1.0, 2.0, 7.0];
        let delta = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(conv_real(&x, &delta), x.to_vec());
    }

    #[test]
    fn shift_kernel_rotates() {
        // Convolving with a shifted impulse rotates the signal.
        let x = [1.0, 2.0, 3.0, 4.0];
        let shift1 = [0.0, 1.0, 0.0, 0.0];
        assert_eq!(conv_real(&x, &shift1), vec![4.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn commutative() {
        let x = [1.0, -2.0, 0.5, 3.0, 1.0];
        let y = [0.2, 0.0, -1.0, 2.0, 0.7];
        let a = conv_real(&x, &y);
        let b = conv_real(&y, &x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_multiplication_identity() {
        // DFT(conv(x,y)) == sqrt(n) * DFT(x) .* DFT(y)
        let x = [1.0, 2.0, 0.0, -1.0, 0.5, 3.0];
        let y = [0.5, 0.5, 0.0, 0.0, 0.0, 0.0];
        let n = x.len() as f64;
        let lhs = dft_real(&conv_real(&x, &y));
        let fx = dft_real(&x);
        let fy = dft_real(&y);
        for (i, l) in lhs.iter().enumerate() {
            let r = (fx[i] * fy[i]).scale(n.sqrt());
            assert!((*l - r).abs() < 1e-10, "coef {i}: {l} vs {r}");
        }
    }

    #[test]
    fn fft_conv_matches_direct() {
        let mut planner = FftPlanner::new();
        for n in [1usize, 2, 5, 15, 16, 33] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let y: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(0.1 * i as f64, -(i as f64 * 0.2).sin()))
                .collect();
            let direct = conv(&x, &y);
            let fast = conv_fft(&mut planner, &x, &y);
            for (d, f) in direct.iter().zip(&fast) {
                assert!((*d - *f).abs() < 1e-8 * (n as f64).max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn real_fft_conv_matches_direct() {
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..15).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        // 3-day moving-average kernel from Example 1.1.
        let mut y = vec![0.0; 15];
        y[0] = 1.0 / 3.0;
        y[1] = 1.0 / 3.0;
        y[2] = 1.0 / 3.0;
        let direct = conv_real(&x, &y);
        let fast = conv_real_fft(&mut planner, &x, &y);
        for (d, f) in direct.iter().zip(&fast) {
            assert!((d - f).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(conv_real(&[], &[]).is_empty());
        let mut planner = FftPlanner::new();
        assert!(conv_fft(&mut planner, &[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = conv_real(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn complex_conv_matches_real_on_real_input() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let cr = conv_real(&x, &y);
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let cy: Vec<Complex64> = y.iter().map(|&v| Complex64::from_real(v)).collect();
        let cc = conv(&cx, &cy);
        for (r, c) in cr.iter().zip(&cc) {
            assert!((r - c.re).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn frequency_identity_with_complex_input() {
        let x: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(i as f64, -0.3 * i as f64))
            .collect();
        let y: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new((i as f64).cos(), 0.1))
            .collect();
        let lhs = dft(&conv(&x, &y));
        let fx = dft(&x);
        let fy = dft(&y);
        for (i, l) in lhs.iter().enumerate() {
            let r = (fx[i] * fy[i]).scale((8f64).sqrt());
            assert!((*l - r).abs() < 1e-9);
        }
    }
}
