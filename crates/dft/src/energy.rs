//! Signal energy, Parseval's relation and frequency-domain distances
//! (Equations 3, 7, 8 of the paper).

use crate::complex::Complex64;

/// Energy of a real signal: `E(x) = sum |x_t|^2` (Equation 3).
#[inline]
pub fn energy_real(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

/// Energy of a complex signal.
#[inline]
pub fn energy_complex(x: &[Complex64]) -> f64 {
    x.iter().map(|c| c.norm_sqr()).sum()
}

/// Euclidean distance between two real signals:
/// `D(x, y) = sqrt(E(x - y))` (Equation 8, time domain).
///
/// # Panics
/// Panics if the lengths differ.
pub fn euclidean_real(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = a - b;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Euclidean distance between two complex spectra:
/// `D(X, Y) = sqrt(E(X - Y))` (Equation 8, frequency domain).
///
/// By Parseval this equals the time-domain distance of the underlying
/// signals when all coefficients are kept; restricted to a prefix of
/// coefficients it is a *lower bound* — the basis of Lemma 1's
/// no-false-dismissal guarantee.
///
/// # Panics
/// Panics if the lengths differ.
pub fn euclidean_complex(x: &[Complex64], y: &[Complex64]) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// Squared-distance prefix scan with early abandoning: accumulates
/// `|x_f - y_f|^2` and returns `None` as soon as the partial sum exceeds
/// `threshold^2`; otherwise returns the full distance.
///
/// Because DFT coefficients of smooth sequences carry most energy up front,
/// scanning spectra in order abandons quickly — this is the "good
/// implementation" of sequential scanning the paper compares against
/// (Section 5).
pub fn euclidean_complex_early_abandon(
    x: &[Complex64],
    y: &[Complex64],
    threshold: f64,
) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    let limit = threshold * threshold;
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        acc += (a - b).norm_sqr();
        if acc > limit {
            return None;
        }
    }
    Some(acc.sqrt())
}

/// Fraction of total signal energy captured by the first `k` DFT
/// coefficients (and, by conjugate symmetry of real signals, their mirror
/// images). Used to choose the index cut-off `k` and reported by the
/// ablation benchmarks.
pub fn prefix_energy_ratio(spectrum: &[Complex64], k: usize) -> f64 {
    let total = energy_complex(spectrum);
    if total == 0.0 {
        return 1.0;
    }
    let n = spectrum.len();
    let k = k.min(n);
    let mut captured = energy_complex(&spectrum[..k]);
    // Mirror coefficients X_{n-f} = conj(X_f) for real signals carry the
    // same energy as X_f (f = 1..k-1).
    for f in 1..k {
        if n - f >= k {
            captured += spectrum[n - f].norm_sqr();
        }
    }
    (captured / total).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_real;

    #[test]
    fn energy_matches_by_hand() {
        assert_eq!(energy_real(&[3.0, 4.0]), 25.0);
        assert_eq!(energy_real(&[]), 0.0);
    }

    #[test]
    fn parseval_distance_preserved() {
        // Equation 8: D(x, y) == D(X, Y).
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin() * 3.0).collect();
        let y: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.23).cos() * 2.0 + 0.5)
            .collect();
        let dt = euclidean_real(&x, &y);
        let fx = dft_real(&x);
        let fy = dft_real(&y);
        let df = euclidean_complex(&fx, &fy);
        assert!((dt - df).abs() < 1e-9 * dt.max(1.0));
    }

    #[test]
    fn prefix_distance_is_lower_bound() {
        // Equation 13: distance over the first k coefficients never exceeds
        // the full distance.
        let x: Vec<f64> = (0..32).map(|i| (i as f64).sqrt()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64).ln_1p() * 2.0).collect();
        let fx = dft_real(&x);
        let fy = dft_real(&y);
        let full = euclidean_complex(&fx, &fy);
        for k in 0..=32 {
            let partial = euclidean_complex(&fx[..k], &fy[..k]);
            assert!(partial <= full + 1e-9, "k={k}: {partial} > {full}");
        }
    }

    #[test]
    fn early_abandon_agrees_with_full() {
        let x: Vec<Complex64> = (0..20).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let y: Vec<Complex64> = (0..20)
            .map(|i| Complex64::new(i as f64 + 1.0, 0.0))
            .collect();
        let d = euclidean_complex(&x, &y);
        // Generous threshold: full distance returned.
        let got = euclidean_complex_early_abandon(&x, &y, d + 1.0).unwrap();
        assert!((got - d).abs() < 1e-12);
        // Tight threshold: abandoned.
        assert!(euclidean_complex_early_abandon(&x, &y, d - 0.5).is_none());
    }

    #[test]
    fn early_abandon_boundary() {
        let x = [Complex64::new(0.0, 0.0)];
        let y = [Complex64::new(3.0, 4.0)];
        // Exactly at the threshold: not abandoned (strict inequality).
        assert_eq!(euclidean_complex_early_abandon(&x, &y, 5.0), Some(5.0));
    }

    #[test]
    fn energy_concentration_for_random_walk() {
        // The paper's premise: for random-walk-like sequences the first few
        // coefficients dominate. A deterministic pseudo-walk suffices here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut v = 50.0;
        let x: Vec<f64> = (0..128)
            .map(|_| {
                // xorshift steps in [-4, 4], mimicking the paper's generator.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v += (state % 9) as f64 - 4.0;
                v
            })
            .collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let centered: Vec<f64> = x.iter().map(|&a| a - mean).collect();
        let spec = dft_real(&centered);
        let ratio = prefix_energy_ratio(&spec, 4);
        assert!(ratio > 0.8, "expected energy concentration, got {ratio}");
    }

    #[test]
    fn prefix_ratio_bounds() {
        let spec = dft_real(&[1.0, 2.0, 3.0, 4.0]);
        assert!(prefix_energy_ratio(&spec, 0) >= 0.0);
        assert!((prefix_energy_ratio(&spec, 4) - 1.0).abs() < 1e-12);
        assert_eq!(prefix_energy_ratio(&[], 3), 1.0);
    }
}
