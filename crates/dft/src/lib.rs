//! # tsq-dft — Fourier substrate for similarity-based time-series queries
//!
//! This crate implements, from scratch, every piece of Fourier machinery the
//! paper *Similarity-Based Queries for Time Series Data* (Rafiei &
//! Mendelzon, SIGMOD 1997) relies on:
//!
//! - [`complex::Complex64`] — dependency-free complex arithmetic with both
//!   rectangular and polar views (Section 3.1 of the paper indexes features
//!   in either representation);
//! - [`dft`] — the unitary DFT exactly as defined by Equations 1–2
//!   (`1/sqrt(n)` in both directions), used as the correctness reference;
//! - [`fft::Radix2Tables`] — iterative power-of-two Cooley–Tukey FFT;
//! - [`bluestein::Bluestein`] — chirp-z FFT for arbitrary lengths (the
//!   paper's examples use lengths 15 and 1067);
//! - [`planner::FftPlanner`] — per-size plan cache choosing naive / radix-2 /
//!   Bluestein;
//! - [`convolution`] — circular convolution and the convolution–
//!   multiplication property (Equations 4 and 6), including the `sqrt(n)`
//!   factor the paper elides;
//! - [`energy`] — energy, Parseval's relation and Euclidean distances in
//!   either domain (Equations 3, 7, 8), plus the early-abandoning distance
//!   used by the sequential-scan baseline;
//! - [`sliding`] — the incremental sliding-window DFT that updates the
//!   first `k` coefficients in `O(k)` per window step, powering the
//!   subsequence ST-index in `tsq-core`.
//!
//! Everything is pure safe Rust with no dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bluestein;
pub mod complex;
pub mod convolution;
pub mod dft;
pub mod energy;
pub mod fft;
pub mod planner;
pub mod sliding;

pub use complex::Complex64;
pub use planner::{FftPlan, FftPlanner};
pub use sliding::{SlidingCursor, SlidingDft};
