//! Bluestein (chirp-z) FFT for arbitrary transform lengths.
//!
//! The paper's motivating sequences are not power-of-two sized (Example 1.1
//! uses length 15; the stock relation has 1067 series), so the library needs
//! a fast transform for any `n`. Bluestein re-expresses a length-`n` DFT as a
//! circular convolution of length `m >= 2n - 1` (with `m` a power of two),
//! giving `O(n log n)` for every `n`.
//!
//! Identity used: `t*f = (t^2 + f^2 - (f - t)^2) / 2`, so
//!
//! ```text
//! X_f = w^{f^2/2} * sum_t (x_t w^{t^2/2}) * w^{-(f-t)^2/2},   w = e^{-j 2 pi / n}
//! ```
//!
//! Phases are computed as `pi * (k^2 mod 2n) / n`, keeping the argument to
//! `sin`/`cos` small for excellent accuracy even at large `n`.

use crate::complex::{Complex64, ZERO};
use crate::fft::Radix2Tables;

/// Precomputed state for a Bluestein transform of fixed size `n`.
#[derive(Debug, Clone)]
pub struct Bluestein {
    n: usize,
    /// Chirp `w^{k^2/2} = e^{-j pi k^2 / n}` for `k in 0..n` (forward).
    chirp: Box<[Complex64]>,
    /// Forward FFT (size `m`) of the zero-padded conjugate-chirp kernel,
    /// left unscaled (raw butterflies).
    kernel_fft: Box<[Complex64]>,
    /// Inner power-of-two FFT.
    inner: Radix2Tables,
}

impl Bluestein {
    /// Builds a Bluestein plan for length `n > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Bluestein size must be positive");
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Tables::new(m);

        let two_n = 2 * n;
        let chirp: Box<[Complex64]> = (0..n)
            .map(|k| {
                let sq = (k * k) % two_n;
                Complex64::cis(-std::f64::consts::PI * sq as f64 / n as f64)
            })
            .collect();

        // Kernel b_k = conj(chirp_|k|) arranged circularly over length m.
        let mut kernel = vec![ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            let v = chirp[k].conj();
            kernel[k] = v;
            kernel[m - k] = v;
        }
        inner.forward_raw(&mut kernel);

        Self {
            n,
            chirp,
            kernel_fft: kernel.into_boxed_slice(),
            inner,
        }
    }

    /// The transform size this plan serves.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; present to satisfy the `len`/`is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward unitary DFT (matches [`crate::dft::dft`]).
    pub fn forward(&self, data: &mut [Complex64]) {
        self.run(data, false);
    }

    /// In-place inverse unitary DFT (matches [`crate::dft::idft`]).
    ///
    /// Implemented via the conjugation identity
    /// `idft(x) = conj(dft(conj(x)))` (valid because both directions share
    /// the `1/sqrt(n)` factor).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.run(data, true);
    }

    fn run(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        assert_eq!(
            data.len(),
            n,
            "Bluestein size mismatch: planned {n}, got {}",
            data.len()
        );
        if inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
        let m = self.inner.len();
        let mut buf = vec![ZERO; m];
        for (k, (&x, &c)) in data.iter().zip(self.chirp.iter()).enumerate() {
            buf[k] = x * c;
        }
        self.inner.forward_raw(&mut buf);
        for (v, &kf) in buf.iter_mut().zip(self.kernel_fft.iter()) {
            *v *= kf;
        }
        self.inner.inverse_raw(&mut buf);
        let scale = 1.0 / (n as f64).sqrt();
        for (k, out) in data.iter_mut().enumerate() {
            *out = (buf[k] * self.chirp[k]).scale(scale);
        }
        if inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y}");
        }
    }

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin() * 3.0, (i as f64 * 1.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn matches_reference_for_awkward_sizes() {
        for &n in &[1usize, 2, 3, 5, 7, 12, 15, 17, 100, 101, 128, 1067] {
            let x = sample(n);
            let plan = Bluestein::new(n);
            let mut got = x.clone();
            plan.forward(&mut got);
            let want = dft(&x);
            assert_close(&got, &want, 1e-8 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn inverse_matches_reference() {
        for &n in &[3usize, 15, 31, 100] {
            let x = sample(n);
            let plan = Bluestein::new(n);
            let mut got = x.clone();
            plan.inverse(&mut got);
            let want = idft(&x);
            assert_close(&got, &want, 1e-8 * (n as f64));
        }
    }

    #[test]
    fn roundtrip() {
        let n = 1067; // the paper's stock-relation cardinality; prime-ish
        let x = sample(n);
        let plan = Bluestein::new(n);
        let mut data = x.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &x, 1e-8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Bluestein::new(0);
    }

    #[test]
    fn power_of_two_agrees_with_radix2() {
        let n = 64;
        let x = sample(n);
        let plan = Bluestein::new(n);
        let tables = crate::fft::Radix2Tables::new(n);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward(&mut a);
        tables.forward(&mut b);
        assert_close(&a, &b, 1e-9);
    }
}
