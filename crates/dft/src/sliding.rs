//! Incremental **sliding DFT**: maintain the first `k` unitary DFT
//! coefficients of a length-`w` window as it slides over a longer sequence,
//! in `O(k)` work per step instead of an `O(w log w)` transform per window.
//!
//! With the unitary convention (Equation 1), the coefficients of the window
//! starting at `t` are
//!
//! ```text
//! X_f(t) = 1/sqrt(w) * sum_{j=0}^{w-1} x_{t+j} e^{-i 2 pi j f / w}
//! ```
//!
//! and advancing the window by one sample satisfies the recurrence
//!
//! ```text
//! X_f(t+1) = e^{+i 2 pi f / w} * (X_f(t) + (x_{t+w} - x_t) / sqrt(w))
//! ```
//!
//! because `e^{-i 2 pi w f / w} = 1`: the outgoing sample is removed, the
//! incoming one enters with the same phase, and the whole spectrum is
//! rotated one bin. This is the feature-extraction engine of the
//! subsequence ST-index (`tsq-core::subseq`), where every stored series
//! contributes `n - w + 1` overlapping windows and recomputing a full FFT
//! per window would dominate index construction.
//!
//! ## Numerical drift
//!
//! Each step multiplies by a unit-magnitude twiddle factor, so rounding
//! error grows (slowly, and only additively) with the number of steps. The
//! driver [`sliding_prefix`] therefore re-anchors the recurrence with an
//! exact prefix transform every [`REFRESH_INTERVAL`] steps, keeping the
//! worst-case deviation from an independently recomputed DFT far below the
//! `1e-9` the property suite demands.

use crate::complex::Complex64;
use crate::dft::dft_prefix;

/// Steps between exact re-anchorings in [`sliding_prefix`]. At ~1 ulp of
/// accumulated phase error per step this bounds drift near `1e-12` for
/// typical magnitudes, with a refresh cost amortized to `O(w*k / 256)` per
/// step — negligible against the `O(k)` update itself.
pub const REFRESH_INTERVAL: usize = 256;

/// Incremental sliding-window DFT over the first `k` coefficients.
///
/// Low-level interface: the caller feeds outgoing/incoming sample pairs via
/// [`SlidingDft::slide`]. No re-anchoring is performed here (the struct
/// never sees the full window); use [`sliding_prefix`] to walk a whole
/// series with periodic exact refreshes.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    scale: f64,
    /// `e^{+i 2 pi f / w}` for `f = 0..k`.
    twiddles: Vec<Complex64>,
    coeffs: Vec<Complex64>,
}

impl SlidingDft {
    /// Initializes the recurrence from the first window of a sequence.
    ///
    /// # Panics
    /// Panics when `initial.len() != window`, `window == 0`, or `k == 0`.
    pub fn new(window: usize, k: usize, initial: &[f64]) -> Self {
        assert!(window > 0, "sliding DFT window must be non-empty");
        assert!(k > 0, "sliding DFT needs at least one coefficient");
        assert_eq!(initial.len(), window, "initial window length mismatch");
        let k = k.min(window);
        let step = std::f64::consts::TAU / window as f64;
        let twiddles = (0..k).map(|f| Complex64::cis(step * f as f64)).collect();
        SlidingDft {
            window,
            scale: 1.0 / (window as f64).sqrt(),
            twiddles,
            coeffs: dft_prefix(initial, k),
        }
    }

    /// Window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of maintained coefficients.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Current coefficients `X_0..X_{k-1}` of the window.
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Advances the window one step: `outgoing` is the sample leaving the
    /// window (`x_t`), `incoming` the one entering (`x_{t+w}`). `O(k)`.
    #[inline]
    pub fn slide(&mut self, outgoing: f64, incoming: f64) {
        let delta = (incoming - outgoing) * self.scale;
        for (c, &tw) in self.coeffs.iter_mut().zip(&self.twiddles) {
            *c = (*c + Complex64::from_real(delta)) * tw;
        }
    }

    /// Replaces the maintained coefficients with an exactly recomputed
    /// prefix transform of `window` (re-anchoring the recurrence).
    ///
    /// # Panics
    /// Panics when `window.len() != self.window()`.
    pub fn refresh(&mut self, window: &[f64]) {
        assert_eq!(window.len(), self.window, "refresh window length mismatch");
        self.coeffs = dft_prefix(window, self.coeffs.len());
    }
}

/// First `k` unitary DFT coefficients of **every** length-`window` window of
/// `x`, computed incrementally with periodic exact re-anchoring.
///
/// Returns one coefficient vector per window offset (`x.len() - window + 1`
/// of them), or an empty vector when `x` is shorter than the window.
/// This is the workhorse the ST-index build calls; the property suite pins
/// it against an independent full transform per window.
pub fn sliding_prefix(x: &[f64], window: usize, k: usize) -> Vec<Vec<Complex64>> {
    assert!(window > 0, "sliding DFT window must be non-empty");
    if x.len() < window {
        return Vec::new();
    }
    let count = x.len() - window + 1;
    let mut out = Vec::with_capacity(count);
    let mut sdft = SlidingDft::new(window, k, &x[..window]);
    out.push(sdft.coeffs().to_vec());
    for t in 1..count {
        if t % REFRESH_INTERVAL == 0 {
            sdft.refresh(&x[t..t + window]);
        } else {
            sdft.slide(x[t - 1], x[t + window - 1]);
        }
        out.push(sdft.coeffs().to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn agrees_with_direct_prefix_power_of_two() {
        let x: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 0.01 * i as f64)
            .collect();
        let w = 16;
        let k = 4;
        let windows = sliding_prefix(&x, w, k);
        assert_eq!(windows.len(), x.len() - w + 1);
        for (t, got) in windows.iter().enumerate() {
            let want = dft_prefix(&x[t..t + w], k);
            assert!(max_err(got, &want) < 1e-10, "offset {t}");
        }
    }

    #[test]
    fn agrees_with_direct_prefix_odd_window() {
        // Window length 15 (the paper's Example-length, not a power of two).
        let x: Vec<f64> = (0..123).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let windows = sliding_prefix(&x, 15, 5);
        for (t, got) in windows.iter().enumerate() {
            let want = dft_prefix(&x[t..t + 15], 5);
            assert!(max_err(got, &want) < 1e-10, "offset {t}");
        }
    }

    #[test]
    fn k_clamped_to_window() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = SlidingDft::new(3, 10, &x[..3]);
        assert_eq!(s.k(), 3);
    }

    #[test]
    fn short_input_yields_no_windows() {
        assert!(sliding_prefix(&[1.0, 2.0], 5, 2).is_empty());
    }

    #[test]
    fn single_window_input() {
        let x = [3.0, -1.0, 4.0, -1.0];
        let windows = sliding_prefix(&x, 4, 2);
        assert_eq!(windows.len(), 1);
        let want = dft_prefix(&x, 2);
        assert!(max_err(&windows[0], &want) < 1e-12);
    }

    #[test]
    fn drift_stays_bounded_over_long_slides() {
        // 5,000 steps without hitting pathological cancellation: the
        // re-anchoring keeps the error far below the suite's 1e-9 budget.
        let x: Vec<f64> = (0..5_064)
            .map(|i| (i as f64 * 0.11).sin() * 1e3 + (i as f64 * 0.013).cos() * 200.0)
            .collect();
        let w = 64;
        let k = 3;
        let windows = sliding_prefix(&x, w, k);
        let mut worst = 0.0f64;
        for (t, got) in windows.iter().enumerate().step_by(97) {
            let want = dft_prefix(&x[t..t + w], k);
            worst = worst.max(max_err(got, &want));
        }
        assert!(worst < 1e-9, "worst drift {worst}");
    }

    #[test]
    fn manual_slide_matches_convenience_driver() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64).cos() * 2.0).collect();
        let w = 8;
        let k = 3;
        let mut sdft = SlidingDft::new(w, k, &x[..w]);
        let all = sliding_prefix(&x, w, k);
        assert!(max_err(sdft.coeffs(), &all[0]) < 1e-12);
        for t in 1..all.len() {
            sdft.slide(x[t - 1], x[t + w - 1]);
            assert!(max_err(sdft.coeffs(), &all[t]) < 1e-9, "offset {t}");
        }
    }
}
