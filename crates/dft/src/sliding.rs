//! Incremental **sliding DFT**: maintain the first `k` unitary DFT
//! coefficients of a length-`w` window as it slides over a longer sequence,
//! in `O(k)` work per step instead of an `O(w log w)` transform per window.
//!
//! With the unitary convention (Equation 1), the coefficients of the window
//! starting at `t` are
//!
//! ```text
//! X_f(t) = 1/sqrt(w) * sum_{j=0}^{w-1} x_{t+j} e^{-i 2 pi j f / w}
//! ```
//!
//! and advancing the window by one sample satisfies the recurrence
//!
//! ```text
//! X_f(t+1) = e^{+i 2 pi f / w} * (X_f(t) + (x_{t+w} - x_t) / sqrt(w))
//! ```
//!
//! because `e^{-i 2 pi w f / w} = 1`: the outgoing sample is removed, the
//! incoming one enters with the same phase, and the whole spectrum is
//! rotated one bin. This is the feature-extraction engine of the
//! subsequence ST-index (`tsq-core::subseq`), where every stored series
//! contributes `n - w + 1` overlapping windows and recomputing a full FFT
//! per window would dominate index construction.
//!
//! ## Numerical drift
//!
//! Each step multiplies by a unit-magnitude twiddle factor, so rounding
//! error grows (slowly, and only additively) with the number of steps. The
//! driver [`sliding_prefix`] therefore re-anchors the recurrence with an
//! exact prefix transform every [`REFRESH_INTERVAL`] steps, keeping the
//! worst-case deviation from an independently recomputed DFT far below the
//! `1e-9` the property suite demands.

use crate::complex::Complex64;
use crate::dft::dft_prefix;

/// Steps between exact re-anchorings in [`sliding_prefix`]. At ~1 ulp of
/// accumulated phase error per step this bounds drift near `1e-12` for
/// typical magnitudes, with a refresh cost amortized to `O(w*k / 256)` per
/// step — negligible against the `O(k)` update itself.
pub const REFRESH_INTERVAL: usize = 256;

/// Incremental sliding-window DFT over the first `k` coefficients.
///
/// Low-level interface: the caller feeds outgoing/incoming sample pairs via
/// [`SlidingDft::slide`]. No re-anchoring is performed here (the struct
/// never sees the full window); use [`sliding_prefix`] to walk a whole
/// series with periodic exact refreshes.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    scale: f64,
    /// `e^{+i 2 pi f / w}` for `f = 0..k`.
    twiddles: Vec<Complex64>,
    coeffs: Vec<Complex64>,
}

impl SlidingDft {
    /// Initializes the recurrence from the first window of a sequence.
    ///
    /// # Panics
    /// Panics when `initial.len() != window`, `window == 0`, or `k == 0`.
    pub fn new(window: usize, k: usize, initial: &[f64]) -> Self {
        assert!(window > 0, "sliding DFT window must be non-empty");
        assert!(k > 0, "sliding DFT needs at least one coefficient");
        assert_eq!(initial.len(), window, "initial window length mismatch");
        let k = k.min(window);
        let step = std::f64::consts::TAU / window as f64;
        let twiddles = (0..k).map(|f| Complex64::cis(step * f as f64)).collect();
        SlidingDft {
            window,
            scale: 1.0 / (window as f64).sqrt(),
            twiddles,
            coeffs: dft_prefix(initial, k),
        }
    }

    /// Window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of maintained coefficients.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Current coefficients `X_0..X_{k-1}` of the window.
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Advances the window one step: `outgoing` is the sample leaving the
    /// window (`x_t`), `incoming` the one entering (`x_{t+w}`). `O(k)`.
    #[inline]
    pub fn slide(&mut self, outgoing: f64, incoming: f64) {
        let delta = (incoming - outgoing) * self.scale;
        for (c, &tw) in self.coeffs.iter_mut().zip(&self.twiddles) {
            *c = (*c + Complex64::from_real(delta)) * tw;
        }
    }

    /// Replaces the maintained coefficients with an exactly recomputed
    /// prefix transform of `window` (re-anchoring the recurrence).
    ///
    /// # Panics
    /// Panics when `window.len() != self.window()`.
    pub fn refresh(&mut self, window: &[f64]) {
        assert_eq!(window.len(), self.window, "refresh window length mismatch");
        self.coeffs = dft_prefix(window, self.coeffs.len());
    }
}

/// A resumable walk over the window offsets of one sequence: the
/// [`SlidingDft`] recurrence plus the *absolute* offset it is anchored at,
/// with re-anchoring on the fixed [`REFRESH_INTERVAL`] schedule.
///
/// Because the refresh schedule is keyed on absolute offsets (`t %
/// REFRESH_INTERVAL == 0`) and both the initial window and every refresh
/// go through the same exact prefix transform, a cursor resumed at offset
/// `t` via [`SlidingCursor::resume`] holds coefficients **bit-identical**
/// to a cursor that walked there from offset 0. This is what lets a
/// streaming append continue a series' trail extraction exactly where the
/// original build left off instead of recomputing the prefix.
#[derive(Debug, Clone)]
pub struct SlidingCursor {
    sdft: SlidingDft,
    offset: usize,
}

impl SlidingCursor {
    /// Positions a cursor at window offset 0 of `x`.
    ///
    /// # Panics
    /// Panics when `x.len() < window`, `window == 0`, or `k == 0`.
    pub fn new(x: &[f64], window: usize, k: usize) -> Self {
        SlidingCursor {
            sdft: SlidingDft::new(window, k, &x[..window]),
            offset: 0,
        }
    }

    /// Positions a cursor at window offset `offset` of `x`, replaying from
    /// the nearest anchor at or before `offset` (at most
    /// `REFRESH_INTERVAL - 1` slides), so the state is bit-identical to a
    /// cursor advanced there from offset 0.
    ///
    /// # Panics
    /// Panics when `offset + window > x.len()`, `window == 0`, or `k == 0`.
    pub fn resume(x: &[f64], window: usize, k: usize, offset: usize) -> Self {
        assert!(
            offset + window <= x.len(),
            "resume offset {offset} puts the window past the sequence"
        );
        let anchor = (offset / REFRESH_INTERVAL) * REFRESH_INTERVAL;
        let mut cursor = SlidingCursor {
            sdft: SlidingDft::new(window, k, &x[anchor..anchor + window]),
            offset: anchor,
        };
        while cursor.offset < offset {
            cursor.advance(x);
        }
        cursor
    }

    /// The window offset the coefficients currently describe.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Coefficients `X_0..X_{k-1}` of the window at [`SlidingCursor::offset`].
    pub fn coeffs(&self) -> &[Complex64] {
        self.sdft.coeffs()
    }

    /// Steps to the next window offset, refreshing exactly when the new
    /// offset lands on the [`REFRESH_INTERVAL`] schedule.
    ///
    /// # Panics
    /// Panics when the next window would run past the end of `x`.
    pub fn advance(&mut self, x: &[f64]) {
        let w = self.sdft.window();
        let t = self.offset + 1;
        assert!(t + w <= x.len(), "advance past the last window of x");
        if t % REFRESH_INTERVAL == 0 {
            self.sdft.refresh(&x[t..t + w]);
        } else {
            self.sdft.slide(x[t - 1], x[t + w - 1]);
        }
        self.offset = t;
    }
}

/// First `k` unitary DFT coefficients of **every** length-`window` window of
/// `x`, computed incrementally with periodic exact re-anchoring.
///
/// Returns one coefficient vector per window offset (`x.len() - window + 1`
/// of them), or an empty vector when `x` is shorter than the window.
/// This is the workhorse the ST-index build calls; the property suite pins
/// it against an independent full transform per window. It is implemented
/// over [`SlidingCursor`], so an index that later *extends* a series with
/// a resumed cursor continues this exact walk, bit for bit.
pub fn sliding_prefix(x: &[f64], window: usize, k: usize) -> Vec<Vec<Complex64>> {
    assert!(window > 0, "sliding DFT window must be non-empty");
    if x.len() < window {
        return Vec::new();
    }
    let count = x.len() - window + 1;
    let mut out = Vec::with_capacity(count);
    let mut cursor = SlidingCursor::new(x, window, k);
    out.push(cursor.coeffs().to_vec());
    for _ in 1..count {
        cursor.advance(x);
        out.push(cursor.coeffs().to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn agrees_with_direct_prefix_power_of_two() {
        let x: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 0.01 * i as f64)
            .collect();
        let w = 16;
        let k = 4;
        let windows = sliding_prefix(&x, w, k);
        assert_eq!(windows.len(), x.len() - w + 1);
        for (t, got) in windows.iter().enumerate() {
            let want = dft_prefix(&x[t..t + w], k);
            assert!(max_err(got, &want) < 1e-10, "offset {t}");
        }
    }

    #[test]
    fn agrees_with_direct_prefix_odd_window() {
        // Window length 15 (the paper's Example-length, not a power of two).
        let x: Vec<f64> = (0..123).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let windows = sliding_prefix(&x, 15, 5);
        for (t, got) in windows.iter().enumerate() {
            let want = dft_prefix(&x[t..t + 15], 5);
            assert!(max_err(got, &want) < 1e-10, "offset {t}");
        }
    }

    #[test]
    fn k_clamped_to_window() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = SlidingDft::new(3, 10, &x[..3]);
        assert_eq!(s.k(), 3);
    }

    #[test]
    fn short_input_yields_no_windows() {
        assert!(sliding_prefix(&[1.0, 2.0], 5, 2).is_empty());
    }

    #[test]
    fn single_window_input() {
        let x = [3.0, -1.0, 4.0, -1.0];
        let windows = sliding_prefix(&x, 4, 2);
        assert_eq!(windows.len(), 1);
        let want = dft_prefix(&x, 2);
        assert!(max_err(&windows[0], &want) < 1e-12);
    }

    #[test]
    fn drift_stays_bounded_over_long_slides() {
        // 5,000 steps without hitting pathological cancellation: the
        // re-anchoring keeps the error far below the suite's 1e-9 budget.
        let x: Vec<f64> = (0..5_064)
            .map(|i| (i as f64 * 0.11).sin() * 1e3 + (i as f64 * 0.013).cos() * 200.0)
            .collect();
        let w = 64;
        let k = 3;
        let windows = sliding_prefix(&x, w, k);
        let mut worst = 0.0f64;
        for (t, got) in windows.iter().enumerate().step_by(97) {
            let want = dft_prefix(&x[t..t + w], k);
            worst = worst.max(max_err(got, &want));
        }
        assert!(worst < 1e-9, "worst drift {worst}");
    }

    #[test]
    fn resumed_cursor_is_bit_identical_to_walked_cursor() {
        // Long enough to cross several refresh anchors.
        let x: Vec<f64> = (0..900)
            .map(|i| (i as f64 * 0.21).sin() * 7.0 - 0.002 * i as f64)
            .collect();
        let w = 32;
        let k = 3;
        let all = sliding_prefix(&x, w, k);
        for offset in [0, 1, 7, 255, 256, 257, 511, 512, 700, all.len() - 1] {
            let cursor = SlidingCursor::resume(&x, w, k, offset);
            assert_eq!(cursor.offset(), offset);
            // Bit-identical, not merely close: streaming extension relies
            // on reproducing the original walk exactly.
            assert_eq!(cursor.coeffs(), &all[offset][..], "offset {offset}");
        }
        // A resumed cursor continues the walk bit-identically too.
        let mut cursor = SlidingCursor::resume(&x, w, k, 300);
        for (t, expected) in all.iter().enumerate().skip(301) {
            cursor.advance(&x);
            assert_eq!(cursor.coeffs(), &expected[..], "offset {t}");
        }
    }

    #[test]
    fn cursor_sees_appends_as_a_continuation() {
        // Walking the prefix then appending must equal walking the final
        // sequence from scratch, bit for bit.
        let full: Vec<f64> = (0..640).map(|i| ((i * 31 % 97) as f64) * 0.5).collect();
        let (w, k) = (16, 4);
        for split in [16, 100, 256, 500] {
            let prefix = &full[..split];
            let mut cursor = SlidingCursor::resume(prefix, w, k, split - w);
            let all = sliding_prefix(&full, w, k);
            for (t, expected) in all.iter().enumerate().skip(split - w + 1) {
                cursor.advance(&full);
                assert_eq!(cursor.coeffs(), &expected[..], "split {split} offset {t}");
            }
        }
    }

    #[test]
    fn manual_slide_matches_convenience_driver() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64).cos() * 2.0).collect();
        let w = 8;
        let k = 3;
        let mut sdft = SlidingDft::new(w, k, &x[..w]);
        let all = sliding_prefix(&x, w, k);
        assert!(max_err(sdft.coeffs(), &all[0]) < 1e-12);
        for t in 1..all.len() {
            sdft.slide(x[t - 1], x[t + w - 1]);
            assert!(max_err(sdft.coeffs(), &all[t]) < 1e-9, "offset {t}");
        }
    }
}
