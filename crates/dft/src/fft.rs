//! Iterative radix-2 Cooley–Tukey FFT for power-of-two lengths.
//!
//! The public entry point is [`crate::planner::FftPlanner`], which caches the
//! twiddle-factor and bit-reversal tables built here and falls back to the
//! Bluestein algorithm for non-power-of-two lengths.
//!
//! The scaling convention matches [`crate::dft`]: both directions carry a
//! `1/sqrt(n)` factor so the transform is unitary.

use crate::complex::Complex64;

/// Precomputed tables for a power-of-two FFT of a fixed size.
#[derive(Debug, Clone)]
pub struct Radix2Tables {
    n: usize,
    /// Twiddles `e^{-j 2 pi k / n}` for `k in 0..n/2` (forward direction).
    twiddles: Box<[Complex64]>,
    /// Bit-reversal permutation.
    rev: Box<[u32]>,
}

impl Radix2Tables {
    /// Builds tables for size `n`, which must be a power of two (and fit the
    /// `u32` permutation index, i.e. `n <= 2^32`).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "radix-2 FFT requires power-of-two size, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT size too large");
        let half = n / 2;
        let step = -std::f64::consts::TAU / n as f64;
        let twiddles: Box<[Complex64]> =
            (0..half).map(|k| Complex64::cis(step * k as f64)).collect();
        let bits = n.trailing_zeros();
        let rev: Box<[u32]> = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self { n, twiddles, rev }
    }

    /// The transform size these tables serve.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when `n == 0` (never, in practice; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT with unitary scaling.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.run(data, Direction::Forward);
        scale(data, 1.0 / (self.n as f64).sqrt());
    }

    /// In-place inverse FFT with unitary scaling.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.run(data, Direction::Inverse);
        scale(data, 1.0 / (self.n as f64).sqrt());
    }

    /// In-place forward FFT **without** any scaling (raw butterflies).
    /// Useful as a building block (e.g. Bluestein) where scaling is applied
    /// once at the end.
    pub fn forward_raw(&self, data: &mut [Complex64]) {
        self.run(data, Direction::Forward);
    }

    /// In-place inverse FFT scaled by `1/n` (so that
    /// `inverse_raw(forward_raw(x)) == x`).
    pub fn inverse_raw(&self, data: &mut [Complex64]) {
        self.run(data, Direction::Inverse);
        scale(data, 1.0 / self.n as f64);
    }

    fn run(&self, data: &mut [Complex64], dir: Direction) {
        let n = self.n;
        assert_eq!(
            data.len(),
            n,
            "FFT size mismatch: planned {n}, got {}",
            data.len()
        );
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies. Twiddle stride for a block of size `len`
        // is n/len, indexing into the length-n/2 forward table.
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if matches!(dir, Direction::Inverse) {
                        w = w.conj();
                    }
                    let t = w * hi[k];
                    let u = lo[k];
                    lo[k] = u + t;
                    hi[k] = u - t;
                }
            }
            len <<= 1;
        }
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Inverse,
}

#[inline]
fn scale(data: &mut [Complex64], k: f64) {
    for v in data {
        *v = v.scale(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y}");
        }
    }

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                Complex64::new(
                    (i as f64 * 0.37).sin() * 2.0 + i as f64 * 0.01,
                    (i as f64 * 0.11).cos(),
                )
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2() {
        let _ = Radix2Tables::new(12);
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let x = sample(n);
            let tables = Radix2Tables::new(n);
            let mut got = x.clone();
            tables.forward(&mut got);
            let want = dft(&x);
            assert_close(&got, &want, 1e-9 * (n as f64));
        }
    }

    #[test]
    fn inverse_matches_reference() {
        for &n in &[2usize, 8, 32, 128] {
            let x = sample(n);
            let tables = Radix2Tables::new(n);
            let mut got = x.clone();
            tables.inverse(&mut got);
            let want = idft(&x);
            assert_close(&got, &want, 1e-9 * (n as f64));
        }
    }

    #[test]
    fn roundtrip_unit_scaling() {
        let n = 512;
        let x = sample(n);
        let tables = Radix2Tables::new(n);
        let mut data = x.clone();
        tables.forward(&mut data);
        tables.inverse(&mut data);
        assert_close(&data, &x, 1e-9);
    }

    #[test]
    fn raw_roundtrip() {
        let n = 64;
        let x = sample(n);
        let tables = Radix2Tables::new(n);
        let mut data = x.clone();
        tables.forward_raw(&mut data);
        tables.inverse_raw(&mut data);
        assert_close(&data, &x, 1e-9);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let tables = Radix2Tables::new(8);
        let mut data = sample(4);
        tables.forward(&mut data);
    }

    #[test]
    fn size_one_is_identity() {
        let tables = Radix2Tables::new(1);
        let mut data = vec![Complex64::new(4.2, -1.0)];
        tables.forward(&mut data);
        assert_close(&data, &[Complex64::new(4.2, -1.0)], 1e-12);
    }
}
