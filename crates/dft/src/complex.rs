//! Double-precision complex numbers.
//!
//! A small, dependency-free complex type sufficient for Fourier analysis:
//! arithmetic, conjugation, polar decomposition and exponentials. Fourier
//! coefficients in the paper are complex numbers manipulated either in
//! rectangular (`re`, `im`) or polar (`abs`, `angle`) form, so both views are
//! first-class here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The naming of the accessors (`re`, `im`, `abs`, `angle`) mirrors the
/// notation `Re(x)`, `Im(x)`, `Abs(x)`, `Angle(x)` used in Section 3.1 of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

/// The imaginary unit `j` (the paper uses `j = sqrt(-1)`).
pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

/// Complex zero.
pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };

/// Complex one.
pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

impl Complex64 {
    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar components: `abs * e^{j*angle}`.
    #[inline]
    pub fn from_polar(abs: f64, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(abs * c, abs * s)
    }

    /// `e^{j*angle}`: the unit complex number at the given phase angle.
    #[inline]
    pub fn cis(angle: f64) -> Self {
        Self::from_polar(1.0, angle)
    }

    /// Magnitude (`Abs(x)` in the paper).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex64::abs`] when comparing.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-pi, pi]` (`Angle(x)` in the paper).
    #[inline]
    pub fn angle(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns infinities if `self` is zero, matching
    /// IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when the imaginary part is within `tol` of zero, i.e. the value
    /// is (numerically) a real number. Safety of transformations in the
    /// rectangular space requires real multipliers (Theorem 2).
    #[inline]
    pub fn is_real(self, tol: f64) -> bool {
        self.im.abs() <= tol
    }

    /// Euclidean distance to another complex number.
    #[inline]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^{-1}
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, x| acc + x)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn arithmetic_basics() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn j_squares_to_minus_one() {
        assert_eq!(J * J, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-3.0, 4.0);
        let back = Complex64::from_polar(z.abs(), z.angle());
        assert!(close(z, back));
        assert!((z.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_and_inverse() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z.conj(), Complex64::new(2.0, 3.0));
        assert!(close(z * z.inv(), ONE));
        assert!((z.norm_sqr() - 13.0).abs() < EPS);
    }

    #[test]
    fn angle_range() {
        assert!((Complex64::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < EPS);
        assert!((Complex64::new(0.0, -1.0).angle() + std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn is_real_tolerance() {
        assert!(Complex64::new(5.0, 1e-13).is_real(1e-12));
        assert!(!Complex64::new(5.0, 1e-3).is_real(1e-12));
    }

    #[test]
    fn paper_counterexample_values() {
        // The multiplier from the Theorem 2 counterexample: s = 2 - 3j.
        let p = Complex64::new(-5.0, -5.0);
        let q = Complex64::new(5.0, 5.0);
        let r = Complex64::new(-2.0, 2.0);
        let s = Complex64::new(2.0, -3.0);
        assert_eq!(p * s, Complex64::new(-25.0, 5.0));
        assert_eq!(q * s, Complex64::new(25.0, -5.0));
        assert_eq!(r * s, Complex64::new(2.0, 10.0));
    }

    #[test]
    fn sum_folds() {
        let zs = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -1.0)];
        let s: Complex64 = zs.iter().copied().sum();
        assert_eq!(s, Complex64::new(3.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }
}
