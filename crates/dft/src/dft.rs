//! Reference discrete Fourier transform (naive `O(n^2)` evaluation).
//!
//! The definitions follow Section 1.1 of the paper exactly, including the
//! *unitary* `1/sqrt(n)` factor in **both** directions (Equations 1 and 2):
//!
//! ```text
//! X_f = 1/sqrt(n) * sum_t x_t e^{-j 2 pi t f / n}
//! x_t = 1/sqrt(n) * sum_f X_f e^{+j 2 pi t f / n}
//! ```
//!
//! With this convention the transform is unitary, so energy and Euclidean
//! distance are preserved (Parseval, Equations 7–8). The fast implementations
//! in [`crate::fft`] and [`crate::bluestein`] are verified against this
//! module in tests.

use crate::complex::{Complex64, ZERO};

/// Computes the unitary DFT of a real-valued sequence (Equation 1).
///
/// Returns all `n` coefficients. `O(n^2)`; prefer [`crate::planner::FftPlanner`]
/// for large inputs.
pub fn dft_real(x: &[f64]) -> Vec<Complex64> {
    let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    dft(&cx)
}

/// Computes the unitary DFT of a complex sequence (Equation 1).
pub fn dft(x: &[Complex64]) -> Vec<Complex64> {
    transform(x, -1.0)
}

/// Computes the unitary inverse DFT (Equation 2).
pub fn idft(x: &[Complex64]) -> Vec<Complex64> {
    transform(x, 1.0)
}

/// Shared kernel: `sign = -1` forward, `+1` inverse, both scaled by
/// `1/sqrt(n)`.
fn transform(x: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let step = sign * std::f64::consts::TAU / n as f64;
    let mut out = Vec::with_capacity(n);
    for f in 0..n {
        let mut acc = ZERO;
        for (t, &xt) in x.iter().enumerate() {
            // Reduce t*f modulo n before computing the phase so the angle
            // stays small and sin/cos remain accurate for long sequences.
            let k = (t * f) % n;
            acc += xt * Complex64::cis(step * k as f64);
        }
        out.push(acc * scale);
    }
    out
}

/// Extracts the first `k` unitary DFT coefficients of a real sequence.
///
/// This is the feature-extraction primitive of AFS93-style indexing: for
/// most "brown noise"-like sequences the energy concentrates in the first few
/// coefficients, so the prefix is a faithful low-dimensional signature.
pub fn dft_prefix(x: &[f64], k: usize) -> Vec<Complex64> {
    let n = x.len();
    let k = k.min(n);
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let step = -std::f64::consts::TAU / n as f64;
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let mut acc = ZERO;
        for (t, &xt) in x.iter().enumerate() {
            let kk = (t * f) % n;
            acc += Complex64::from_real(xt) * Complex64::cis(step * kk as f64);
        }
        out.push(acc * scale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{energy_complex, energy_real};

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
        assert!(dft_real(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = [Complex64::new(3.5, -1.0)];
        assert_close(&dft(&x), &x, 1e-12);
        assert_close(&idft(&x), &x, 1e-12);
    }

    #[test]
    fn constant_sequence_concentrates_in_dc() {
        // DFT of a constant c over n points = [c*sqrt(n), 0, 0, ...].
        let x = vec![2.0; 16];
        let spec = dft_real(&x);
        assert!((spec[0].re - 2.0 * 4.0).abs() < 1e-12);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_inverse() {
        let x: Vec<Complex64> = (0..13)
            .map(|i| Complex64::new((i as f64).sin() * 3.0, (i as f64 * 0.7).cos()))
            .collect();
        let back = idft(&dft(&x));
        assert_close(&back, &x, 1e-10);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<f64> = (0..31).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let spec = dft_real(&x);
        let e_time = energy_real(&x);
        let e_freq = energy_complex(&spec);
        assert!((e_time - e_freq).abs() < 1e-9 * e_time.max(1.0));
    }

    #[test]
    fn linearity() {
        let x: Vec<Complex64> = (0..10)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let y: Vec<Complex64> = (0..10)
            .map(|i| Complex64::new((i as f64).cos(), 0.3))
            .collect();
        let a = Complex64::new(2.0, 0.0);
        let b = Complex64::new(-1.0, 0.5);
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + b * yi).collect();
        let lhs = dft(&combo);
        let dx = dft(&x);
        let dy = dft(&y);
        let rhs: Vec<Complex64> = dx
            .iter()
            .zip(&dy)
            .map(|(&xi, &yi)| a * xi + b * yi)
            .collect();
        assert_close(&lhs, &rhs, 1e-10);
    }

    #[test]
    fn prefix_matches_full() {
        let x: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.3).sin() + 0.1 * i as f64)
            .collect();
        let full = dft_real(&x);
        let pre = dft_prefix(&x, 5);
        assert_close(&pre, &full[..5], 1e-10);
    }

    #[test]
    fn prefix_clamps_k() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(dft_prefix(&x, 10).len(), 3);
        assert_eq!(dft_prefix(&x, 0).len(), 0);
    }

    #[test]
    fn normal_form_first_coefficient_is_zero() {
        // A zero-mean sequence has X_0 = 0; the paper drops that coefficient.
        let x = [1.0, -2.0, 3.0, -2.0];
        let spec = dft_real(&x);
        assert!(spec[0].abs() < 1e-12);
    }
}
