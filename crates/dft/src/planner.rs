//! FFT planning and plan caching.
//!
//! [`FftPlanner`] picks the right algorithm per size (radix-2 for powers of
//! two, Bluestein otherwise, the naive reference below a small cutoff) and
//! caches the precomputed tables so repeated transforms of the same length —
//! the common case when indexing a relation of equal-length sequences — pay
//! the setup cost once.

use std::collections::HashMap;
use std::rc::Rc;

use crate::bluestein::Bluestein;
use crate::complex::Complex64;
use crate::dft;
use crate::fft::Radix2Tables;

/// Sizes at or below this use the naive reference transform; the `O(n^2)`
/// kernel with tiny constants beats FFT setup for very short sequences.
const NAIVE_CUTOFF: usize = 8;

/// A ready-to-run transform plan for one fixed length.
#[derive(Debug, Clone)]
pub enum FftPlan {
    /// Direct evaluation of the defining sums.
    Naive(usize),
    /// Power-of-two Cooley–Tukey.
    Radix2(Rc<Radix2Tables>),
    /// Arbitrary-length chirp-z.
    Bluestein(Rc<Bluestein>),
}

impl FftPlan {
    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        match self {
            FftPlan::Naive(n) => *n,
            FftPlan::Radix2(t) => t.len(),
            FftPlan::Bluestein(b) => b.len(),
        }
    }

    /// True only for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place unitary forward DFT.
    pub fn forward(&self, data: &mut [Complex64]) {
        match self {
            FftPlan::Naive(n) => {
                assert_eq!(data.len(), *n, "plan size mismatch");
                let out = dft::dft(data);
                data.copy_from_slice(&out);
            }
            FftPlan::Radix2(t) => t.forward(data),
            FftPlan::Bluestein(b) => b.forward(data),
        }
    }

    /// In-place unitary inverse DFT.
    pub fn inverse(&self, data: &mut [Complex64]) {
        match self {
            FftPlan::Naive(n) => {
                assert_eq!(data.len(), *n, "plan size mismatch");
                let out = dft::idft(data);
                data.copy_from_slice(&out);
            }
            FftPlan::Radix2(t) => t.inverse(data),
            FftPlan::Bluestein(b) => b.inverse(data),
        }
    }
}

/// Caches transform plans per size.
///
/// Not thread-safe by design (plans are cheap `Rc`s); create one planner per
/// thread, or share immutable [`FftPlan`]s after planning.
#[derive(Debug, Default)]
pub struct FftPlanner {
    radix2: HashMap<usize, Rc<Radix2Tables>>,
    bluestein: HashMap<usize, Rc<Bluestein>>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a plan for transforms of length `n`.
    pub fn plan(&mut self, n: usize) -> FftPlan {
        if n <= NAIVE_CUTOFF {
            return FftPlan::Naive(n);
        }
        if n.is_power_of_two() {
            let t = self
                .radix2
                .entry(n)
                .or_insert_with(|| Rc::new(Radix2Tables::new(n)))
                .clone();
            FftPlan::Radix2(t)
        } else {
            let b = self
                .bluestein
                .entry(n)
                .or_insert_with(|| Rc::new(Bluestein::new(n)))
                .clone();
            FftPlan::Bluestein(b)
        }
    }

    /// Convenience: unitary forward DFT of a real sequence, allocating the
    /// output.
    pub fn dft_real(&mut self, x: &[f64]) -> Vec<Complex64> {
        let mut data: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        self.plan(x.len()).forward(&mut data);
        data
    }

    /// Convenience: unitary forward DFT of a complex sequence.
    pub fn dft(&mut self, x: &[Complex64]) -> Vec<Complex64> {
        let mut data = x.to_vec();
        self.plan(x.len()).forward(&mut data);
        data
    }

    /// Convenience: unitary inverse DFT.
    pub fn idft(&mut self, x: &[Complex64]) -> Vec<Complex64> {
        let mut data = x.to_vec();
        self.plan(x.len()).inverse(&mut data);
        data
    }

    /// Inverse DFT returning only real parts — the natural output when the
    /// spectrum is (numerically) conjugate-symmetric, e.g. after transforming
    /// features of a real time series back to the time domain.
    pub fn idft_real(&mut self, x: &[Complex64]) -> Vec<f64> {
        self.idft(x).into_iter().map(|c| c.re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_real;

    #[test]
    fn planner_matches_reference_across_sizes() {
        let mut planner = FftPlanner::new();
        for n in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 100, 128, 200] {
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.9).sin() + 0.05 * i as f64)
                .collect();
            let got = planner.dft_real(&x);
            let want = dft_real(&x);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (*g - *w).abs() < 1e-8 * (n as f64).max(1.0),
                    "n={n}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn plans_are_cached() {
        let mut planner = FftPlanner::new();
        let a = planner.plan(1024);
        let b = planner.plan(1024);
        match (&a, &b) {
            (FftPlan::Radix2(x), FftPlan::Radix2(y)) => assert!(Rc::ptr_eq(x, y)),
            _ => panic!("expected radix-2 plans"),
        }
        let c = planner.plan(1067);
        let d = planner.plan(1067);
        match (&c, &d) {
            (FftPlan::Bluestein(x), FftPlan::Bluestein(y)) => assert!(Rc::ptr_eq(x, y)),
            _ => panic!("expected Bluestein plans"),
        }
    }

    #[test]
    fn roundtrip_real() {
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.31).cos() * 4.0).collect();
        let spec = planner.dft_real(&x);
        let back = planner.idft_real(&spec);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn small_sizes_use_naive() {
        let mut planner = FftPlanner::new();
        assert!(matches!(planner.plan(4), FftPlan::Naive(4)));
        assert!(matches!(planner.plan(8), FftPlan::Naive(8)));
        assert!(matches!(planner.plan(9), FftPlan::Bluestein(_)));
        assert!(matches!(planner.plan(16), FftPlan::Radix2(_)));
    }
}
