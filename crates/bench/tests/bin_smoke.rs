//! Smoke tests for the `reproduce` binary: `--help` and unknown-target
//! rejection. (The figure targets themselves build 1067-series indexes and
//! are exercised by `cargo run -p tsq-bench --bin reproduce`, not here.)

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_reproduce");

#[test]
fn help_lists_targets() {
    let out = Command::new(BIN)
        .arg("--help")
        .output()
        .expect("run reproduce");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("usage: reproduce"), "stdout: {stdout}");
    for target in ["fig8", "fig12", "table1", "ablations", "all"] {
        assert!(stdout.contains(target), "usage missing {target}: {stdout}");
    }
}

#[test]
fn unknown_target_is_rejected() {
    let out = Command::new(BIN)
        .arg("fig99")
        .output()
        .expect("run reproduce");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown target"), "stderr: {stderr}");
}
