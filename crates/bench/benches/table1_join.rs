//! Table 1: the spatial self-join on the 1067-stock relation under
//! T_mavg20, by all four of the paper's methods plus the tree-join
//! extension.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, calibrate_join_eps, stock_relation};
use tsq_core::{LinearTransform, ScanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_join");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let idx = build_index(stock_relation());
    let t = LinearTransform::moving_average(128, 20);
    let identity = LinearTransform::identity(128);
    let eps = calibrate_join_eps(&idx, &t, 12);

    group.bench_function("a_scan_full", |b| {
        b.iter(|| black_box(idx.join_scan(eps, &t, ScanMode::Naive).unwrap()))
    });
    group.bench_function("b_scan_early_abandon", |b| {
        b.iter(|| black_box(idx.join_scan(eps, &t, ScanMode::EarlyAbandon).unwrap()))
    });
    group.bench_function("c_index_join_no_transform", |b| {
        b.iter(|| black_box(idx.join_index(eps, &identity).unwrap()))
    });
    group.bench_function("d_index_join_mavg20", |b| {
        b.iter(|| black_box(idx.join_index(eps, &t).unwrap()))
    });
    group.bench_function("e_tree_join_mavg20", |b| {
        b.iter(|| black_box(idx.join_tree(eps, &t).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
