//! Subsequence search: trail ST-index vs. sliding scans, and sliding-DFT
//! feature extraction vs. per-window full FFT recomputation.
//!
//! Two claims are measured (and sanity-asserted during setup):
//! - the ST-index examines strictly fewer candidate windows than any
//!   sliding scan (which always pays for every window), and answers range
//!   queries faster on selective thresholds;
//! - incremental sliding-DFT feature extraction (`O(k)` per window) beats
//!   recomputing a full FFT per window (`O(w log w)`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::random_walks;
use tsq_core::{ScanMode, SubseqConfig, SubseqIndex};
use tsq_dft::sliding::sliding_prefix;
use tsq_dft::FftPlanner;
use tsq_series::TimeSeries;

const WINDOW: usize = 64;
const K: usize = 3;
const EPS: f64 = 1.5; // the jittered probe's own window sits near D = 1.13

fn workload() -> (SubseqIndex, TimeSeries) {
    let relation = random_walks(200, 512, 20_260_727);
    let idx = SubseqIndex::build(
        SubseqConfig {
            k: K,
            ..SubseqConfig::new(WINDOW)
        },
        relation.clone(),
    )
    .expect("build ST-index");
    // A near-resident probe: a stored window plus small jitter, so the
    // answer set is small and the threshold selective.
    let q = TimeSeries::new(
        relation[17].values()[100..100 + WINDOW]
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.2 * (i as f64 * 0.7).sin())
            .collect(),
    );
    (idx, q)
}

fn bench_range(c: &mut Criterion) {
    let (idx, q) = workload();
    // Acceptance shape, checked every bench run: the index must examine
    // strictly fewer candidates than the scan's mandatory window count.
    let (_, stats) = idx.subseq_range(&q, EPS).unwrap();
    println!(
        "subseq range eps={EPS}: {} candidate windows vs {} scanned by the sliding scan \
         ({} trail MBRs hit, {} false hits)",
        stats.candidates,
        idx.windows_total(),
        stats.trails,
        stats.false_hits
    );
    assert!(
        stats.candidates < idx.windows_total(),
        "ST-index must prune the sliding scan's candidate set"
    );

    let mut group = c.benchmark_group("subseq_range");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_with_input(BenchmarkId::new("index", WINDOW), &WINDOW, |b, _| {
        b.iter(|| black_box(idx.subseq_range(&q, EPS).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("scan_ea", WINDOW), &WINDOW, |b, _| {
        b.iter(|| {
            black_box(
                idx.scan_subseq_range(&q, EPS, ScanMode::EarlyAbandon)
                    .unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("scan_naive", WINDOW), &WINDOW, |b, _| {
        b.iter(|| black_box(idx.scan_subseq_range(&q, EPS, ScanMode::Naive).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("knn10", WINDOW), &WINDOW, |b, _| {
        b.iter(|| black_box(idx.subseq_knn(&q, 10).unwrap()))
    });
    group.finish();
}

/// Per-window full-FFT reference for the feature-extraction comparison.
fn fft_per_window(x: &[f64], w: usize, k: usize) -> Vec<Vec<tsq_dft::Complex64>> {
    let mut planner = FftPlanner::new();
    (0..=x.len() - w)
        .map(|t| {
            let mut spec = planner.dft_real(&x[t..t + w]);
            spec.truncate(k);
            spec
        })
        .collect()
}

fn bench_features(c: &mut Criterion) {
    let series = random_walks(1, 8_192, 7)[0].clone();
    let x = series.values();
    // Cross-check once: both extractors agree.
    let a = sliding_prefix(x, WINDOW, K);
    let b = fft_per_window(x, WINDOW, K);
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        for (ca, cb) in pa.iter().zip(pb) {
            assert!((*ca - *cb).abs() < 1e-9, "extractors disagree");
        }
    }

    let mut group = c.benchmark_group("subseq_features");
    group
        .sample_size(12)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_with_input(BenchmarkId::new("sliding_dft", WINDOW), &WINDOW, |b, _| {
        b.iter(|| black_box(sliding_prefix(x, WINDOW, K)))
    });
    group.bench_with_input(
        BenchmarkId::new("fft_per_window", WINDOW),
        &WINDOW,
        |b, _| b.iter(|| black_box(fft_per_window(x, WINDOW, K))),
    );
    group.finish();
}

criterion_group!(benches, bench_range, bench_features);
criterion_main!(benches);
