//! Figure 9: range-query time vs relation size (length 128), identity
//! transformation — transformed traversal vs plain traversal.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, random_walks};
use tsq_core::{LinearTransform, QueryWindow};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_cardinality");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for &count in &[500usize, 2000, 12000] {
        let idx = build_index(random_walks(count, 128, 9_000 + count as u64));
        let t = LinearTransform::identity(128);
        let q = idx.series(17).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(BenchmarkId::new("with_transform", count), &count, |b, _| {
            b.iter(|| black_box(idx.range_query_forced(&q, 1.0, &t, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("plain", count), &count, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, 1.0, &t, &w).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
