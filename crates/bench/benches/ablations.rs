//! Ablations beyond the paper: cut-off k, coordinate space, construction
//! strategy, forced reinsertion, KNN, and the FFT substrate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, stock_relation};
use tsq_core::{
    FeatureSchema, IndexConfig, LinearTransform, QueryWindow, SimilarityIndex, SpaceKind,
};
use tsq_dft::FftPlanner;
use tsq_rtree::RTreeConfig;

fn bench(c: &mut Criterion) {
    let relation = stock_relation();
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Cut-off k: filter power vs dimensionality.
    for &k in &[1usize, 2, 4] {
        let cfg = IndexConfig {
            schema: FeatureSchema::NormalForm { k },
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, relation.clone()).unwrap();
        let t = LinearTransform::moving_average(128, 20);
        let q = idx.series(17).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(BenchmarkId::new("k_sweep_range_query", k), &k, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, 1.5, &t, &w).unwrap()))
        });
    }

    // Coordinate space under T_rev (legal in both).
    for (name, space) in [
        ("polar", SpaceKind::Polar),
        ("rect", SpaceKind::Rectangular),
    ] {
        let cfg = IndexConfig {
            space,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, relation.clone()).unwrap();
        let t = LinearTransform::reverse(128);
        let q = idx.series(3).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(
            BenchmarkId::new("space_reverse_query", name),
            &name,
            |b, _| b.iter(|| black_box(idx.range_query(&q, 4.0, &t, &w).unwrap())),
        );
    }

    // Construction: STR bulk vs incremental R* insert vs no-reinsert.
    group.bench_function("build_bulk_str", |b| {
        b.iter(|| black_box(build_index(relation.clone())))
    });
    group.bench_function("build_incremental_rstar", |b| {
        b.iter(|| {
            let cfg = IndexConfig {
                bulk_load: false,
                ..IndexConfig::default()
            };
            black_box(SimilarityIndex::build(cfg, relation.clone()).unwrap())
        })
    });
    group.bench_function("build_incremental_no_reinsert", |b| {
        b.iter(|| {
            let cfg = IndexConfig {
                bulk_load: false,
                rtree: RTreeConfig::default().without_reinsert(),
                ..IndexConfig::default()
            };
            black_box(SimilarityIndex::build(cfg, relation.clone()).unwrap())
        })
    });

    // KNN under a transformation.
    {
        let idx = build_index(relation.clone());
        let t = LinearTransform::moving_average(128, 20);
        let q = idx.series(42).unwrap().clone();
        group.bench_function("knn10_mavg20", |b| {
            b.iter(|| black_box(idx.knn_query(&q, 10, &t).unwrap()))
        });
    }

    // FFT substrate: power-of-two vs Bluestein sizes.
    {
        let mut planner = FftPlanner::new();
        let x128: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin()).collect();
        let x1067: Vec<f64> = (0..1067).map(|i| (i as f64 * 0.37).sin()).collect();
        let p128 = planner.plan(128);
        let p1067 = planner.plan(1067);
        group.bench_function("fft_radix2_128", |b| {
            let mut buf: Vec<tsq_dft::Complex64> = x128
                .iter()
                .map(|&v| tsq_dft::Complex64::from_real(v))
                .collect();
            b.iter(|| {
                p128.forward(&mut buf);
                black_box(&buf);
            })
        });
        group.bench_function("fft_bluestein_1067", |b| {
            let mut buf: Vec<tsq_dft::Complex64> = x1067
                .iter()
                .map(|&v| tsq_dft::Complex64::from_real(v))
                .collect();
            b.iter(|| {
                p1067.forward(&mut buf);
                black_box(&buf);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
