//! Figure 12: index vs scan as the answer-set size grows (1067 stocks,
//! length 128, T_mavg20). The paper's crossover sits near an answer set of
//! ~300 (a third of the relation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, stock_relation};
use tsq_core::{LinearTransform, QueryWindow, ScanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_selectivity");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let idx = build_index(stock_relation());
    let t = LinearTransform::moving_average(128, 20);
    let q = idx.series(17).unwrap().clone();
    let w = QueryWindow::default();
    // Thresholds derived from the sorted distance distribution so the
    // answer sizes land on the targets (the paper's x-axis).
    let qf = idx.query_features(&q, &t).unwrap();
    let mut dists: Vec<f64> = (0..idx.len())
        .map(|id| idx.exact_distance(id, &t, &qf))
        .collect();
    dists.sort_by(f64::total_cmp);
    for &target in &[10usize, 150, 400] {
        let eps = 0.5 * (dists[target - 1] + dists[target]);
        group.bench_with_input(BenchmarkId::new("index", target), &target, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, eps, &t, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("scan", target), &target, |b, _| {
            b.iter(|| black_box(idx.scan_range(&q, eps, &t, ScanMode::EarlyAbandon).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
