//! Figure 10: transformed index query vs sequential scan, varying the
//! sequence length (1,000 sequences, T_mavg20).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, random_walks};
use tsq_core::{LinearTransform, QueryWindow, ScanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_scan_length");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for &len in &[64usize, 256, 1024] {
        let idx = build_index(random_walks(1000, len, 10_000 + len as u64));
        let t = LinearTransform::moving_average(len, 20.min(len / 2));
        let q = idx.series(17).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(BenchmarkId::new("index", len), &len, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, 1.0, &t, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("scan", len), &len, |b, _| {
            b.iter(|| black_box(idx.scan_range(&q, 1.0, &t, ScanMode::EarlyAbandon).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
