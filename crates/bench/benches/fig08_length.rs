//! Figure 8: range-query time vs sequence length (1,000 sequences),
//! identity transformation — transformed traversal vs plain traversal.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, random_walks};
use tsq_core::{LinearTransform, QueryWindow};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_length");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for &len in &[64usize, 256, 1024] {
        let idx = build_index(random_walks(1000, len, 8_000 + len as u64));
        let t = LinearTransform::identity(len);
        let q = idx.series(17).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(BenchmarkId::new("with_transform", len), &len, |b, _| {
            b.iter(|| black_box(idx.range_query_forced(&q, 1.0, &t, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("plain", len), &len, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, 1.0, &t, &w).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
