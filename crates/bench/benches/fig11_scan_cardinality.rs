//! Figure 11: transformed index query vs sequential scan, varying the
//! relation size (length 128, T_mavg20).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsq_bench::{build_index, random_walks};
use tsq_core::{LinearTransform, QueryWindow, ScanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_scan_cardinality");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for &count in &[500usize, 2000, 12000] {
        let idx = build_index(random_walks(count, 128, 11_000 + count as u64));
        let t = LinearTransform::moving_average(128, 20);
        let q = idx.series(17).unwrap().clone();
        let w = QueryWindow::default();
        group.bench_with_input(BenchmarkId::new("index", count), &count, |b, _| {
            b.iter(|| black_box(idx.range_query(&q, 1.0, &t, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("scan", count), &count, |b, _| {
            b.iter(|| black_box(idx.scan_range(&q, 1.0, &t, ScanMode::EarlyAbandon).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
