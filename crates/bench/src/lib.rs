//! Shared workloads and experiment runners for the benchmark harness.
//!
//! Every figure and table of the paper's Section 5 has a runner here; the
//! `reproduce` binary prints the paper-shaped series and the Criterion
//! benches measure representative points with statistical rigor.
//!
//! Hardware note: the paper ran on 1997 disk-resident infrastructure, so
//! absolute milliseconds are not comparable. Each runner therefore reports
//! both wall-clock time and simulated disk accesses (R\*-tree node visits),
//! and EXPERIMENTS.md compares *shapes*: who wins, by what factor, where
//! the crossover sits.

use std::time::Instant;

use tsq_core::{
    FeatureSchema, IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex, SpaceKind,
};
use tsq_rtree::RTreeConfig;
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_series::TimeSeries;

/// Deterministic random-walk relation (the paper's synthetic workload).
pub fn random_walks(count: usize, len: usize, seed: u64) -> Vec<TimeSeries> {
    RandomWalkGenerator::new(seed).relation(count, len)
}

/// The stand-in for the paper's stock relation: 1067 series of length 128
/// (see DESIGN.md §5 for the substitution rationale).
pub fn stock_relation() -> Vec<TimeSeries> {
    let mut gen = StockGenerator::new(19_970_525); // SIGMOD '97 week
    gen.inverse_fraction = 0.1;
    gen.relation(1067, 128)
}

/// Builds the default paper-configuration index (6-d polar normal-form
/// schema, k = 2).
pub fn build_index(relation: Vec<TimeSeries>) -> SimilarityIndex {
    SimilarityIndex::build(IndexConfig::default(), relation).expect("index build")
}

/// Measures `f` over `iters` runs, returning mean milliseconds.
pub fn time_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// One measured point of an experiment curve.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The x-axis value (sequence length, relation size, answer size...).
    pub x: f64,
    /// Mean per-query time with the transformed index path (ms).
    pub with_transform_ms: f64,
    /// Mean per-query time of the comparison strategy (ms).
    pub baseline_ms: f64,
    /// Node accesses of the transformed path.
    pub with_transform_accesses: u64,
    /// Node accesses (or sequences scanned) of the baseline.
    pub baseline_accesses: u64,
    /// Answer-set size.
    pub answers: usize,
}

/// Number of query repetitions per measurement point.
const QUERY_REPEATS: usize = 20;

/// Figure 8 / Figure 10 x-axis.
pub const LENGTHS: &[usize] = &[64, 128, 256, 512, 1024];
/// Figure 9 / Figure 11 x-axis.
pub const CARDINALITIES: &[usize] = &[500, 1000, 2000, 4000, 8000, 12000];

fn mean_query_radius() -> f64 {
    // Normal-form distance threshold giving small (paper-like) answer sets
    // on random walks.
    1.0
}

/// Figure 8/9 point: identity-transformed index traversal vs plain index
/// traversal, same query.
pub fn fig8_point(count: usize, len: usize, seed: u64) -> Point {
    let idx = build_index(random_walks(count, len, seed));
    let identity = LinearTransform::identity(len);
    let eps = mean_query_radius();
    let window = QueryWindow::default();
    let queries: Vec<TimeSeries> = (0..QUERY_REPEATS)
        .map(|i| {
            idx.series(i * (count / QUERY_REPEATS).max(1) % count)
                .unwrap()
                .clone()
        })
        .collect();

    // Warm-up: touch the whole code path once so lazy page faults and
    // allocator growth do not land in the first timed point.
    let _ = idx.range_query_forced(&queries[0], eps, &identity, &window);
    let _ = idx.range_query(&queries[0], eps, &identity, &window);

    let mut accesses_t = 0u64;
    let mut accesses_p = 0u64;
    let mut answers = 0usize;
    // Transformed path (Algorithm 2 with T = identity, vector ops forced).
    let with_ms = time_ms(1, || {
        for q in &queries {
            let (m, s) = idx.range_query_forced(q, eps, &identity, &window).unwrap();
            accesses_t += s.index.nodes_visited;
            answers += m.len();
        }
    }) / QUERY_REPEATS as f64;
    // Plain path (ordinary range query on the same index).
    let plain_ms = time_ms(1, || {
        for q in &queries {
            let (_, s) = idx.range_query(q, eps, &identity, &window).unwrap();
            accesses_p += s.index.nodes_visited;
        }
    }) / QUERY_REPEATS as f64;
    Point {
        x: len as f64,
        with_transform_ms: with_ms,
        baseline_ms: plain_ms,
        with_transform_accesses: accesses_t / QUERY_REPEATS as u64,
        baseline_accesses: accesses_p / QUERY_REPEATS as u64,
        answers: answers / QUERY_REPEATS,
    }
}

/// Figure 9 point (same comparison, x = relation cardinality).
pub fn fig9_point(count: usize, seed: u64) -> Point {
    let mut p = fig8_point(count, 128, seed);
    p.x = count as f64;
    p
}

/// Figure 10/11 point: transformed index vs early-abandoning
/// frequency-domain sequential scan, both under `T_mavg20`.
pub fn fig10_point(count: usize, len: usize, seed: u64) -> Point {
    let idx = build_index(random_walks(count, len, seed));
    let t = LinearTransform::moving_average(len, 20.min(len / 2).max(2));
    let eps = mean_query_radius();
    let window = QueryWindow::default();
    // Both sides are smoothed (the paper's similarity semantics: compare
    // D(T(x), T(q)) as in Examples 1.1/2.1 and Table 1); the query features
    // are the transformed features of a stored series.
    let qfs: Vec<tsq_core::Features> = (0..QUERY_REPEATS)
        .map(|i| {
            idx.transformed_features(i * (count / QUERY_REPEATS).max(1) % count, &t)
                .unwrap()
        })
        .collect();
    let mut accesses = 0u64;
    let mut answers = 0usize;
    let index_ms = time_ms(1, || {
        for qf in &qfs {
            let (m, s) = idx.range_query_features(qf, eps, &t, &window).unwrap();
            accesses += s.index.nodes_visited;
            answers += m.len();
        }
    }) / QUERY_REPEATS as f64;
    let mut scanned = 0u64;
    let scan_ms = time_ms(1, || {
        for qf in &qfs {
            let (_, s) = idx.scan_range_features(qf, eps, &t, ScanMode::EarlyAbandon);
            scanned += s.scanned as u64;
        }
    }) / QUERY_REPEATS as f64;
    Point {
        x: len as f64,
        with_transform_ms: index_ms,
        baseline_ms: scan_ms,
        with_transform_accesses: accesses / QUERY_REPEATS as u64,
        baseline_accesses: scanned / QUERY_REPEATS as u64,
        answers: answers / QUERY_REPEATS,
    }
}

/// Figure 11 point (x = relation cardinality).
pub fn fig11_point(count: usize, seed: u64) -> Point {
    let mut p = fig10_point(count, 128, seed);
    p.x = count as f64;
    p
}

/// Figure 12: time vs answer-set size on the 1067-stock relation.
///
/// The paper varies the threshold "so that the query gave us different
/// numbers of time series in the answer set"; this runner derives the
/// thresholds from the sorted distance distribution so the measured points
/// land on the requested answer sizes exactly.
pub fn fig12_curve(targets: &[usize]) -> Vec<Point> {
    let idx = build_index(stock_relation());
    let t = LinearTransform::moving_average(128, 20);
    let window = QueryWindow::default();
    // Both sides smoothed (Table 1 semantics): the query point is the
    // transformed feature vector of stored series 17.
    let qf = idx.transformed_features(17, &t).expect("features");
    let mut dists: Vec<f64> = (0..idx.len())
        .map(|id| idx.exact_distance(id, &t, &qf))
        .collect();
    dists.sort_by(f64::total_cmp);
    let thresholds: Vec<f64> = targets
        .iter()
        .map(|&k| {
            if k == 0 {
                (dists[0] * 0.5).max(1e-6)
            } else if k >= dists.len() {
                dists[dists.len() - 1] + 1.0
            } else {
                0.5 * (dists[k - 1] + dists[k])
            }
        })
        .collect();
    let mut out = Vec::with_capacity(thresholds.len());
    for &eps in &thresholds {
        let mut answers = 0usize;
        let mut accesses = 0u64;
        let index_ms = time_ms(5, || {
            let (m, s) = idx.range_query_features(&qf, eps, &t, &window).unwrap();
            answers = m.len();
            accesses = s.index.nodes_visited;
        });
        let scan_ms = time_ms(5, || {
            let _ = idx.scan_range_features(&qf, eps, &t, ScanMode::EarlyAbandon);
        });
        out.push(Point {
            x: answers as f64,
            with_transform_ms: index_ms,
            baseline_ms: scan_ms,
            with_transform_accesses: accesses,
            baseline_accesses: idx.len() as u64,
            answers,
        });
    }
    out
}

/// Table 1 rows.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Method label (a, b, c, d, e*).
    pub method: &'static str,
    /// Description.
    pub description: &'static str,
    /// Wall time, milliseconds.
    pub time_ms: f64,
    /// Answer-set size as the paper counts it.
    pub answers: usize,
    /// Simulated I/O: exact distance computations for scans; R-tree node
    /// accesses plus candidate record reads for index methods. On 1997
    /// disk-resident hardware this column, not wall-clock, dominated.
    pub simulated_io: u64,
}

/// Finds a threshold whose method-(a) self-join answer is close to
/// `target` pairs, by bisection on the pair count (monotone in eps).
pub fn calibrate_join_eps(idx: &SimilarityIndex, t: &LinearTransform, target: usize) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let n = idx
            .join_scan(mid, t, ScanMode::EarlyAbandon)
            .expect("join")
            .pairs
            .len();
        if n < target {
            lo = mid;
        } else if n > target {
            hi = mid;
        } else {
            return mid;
        }
    }
    0.5 * (lo + hi)
}

/// Runs the Table 1 experiment on the stand-in stock relation.
pub fn table1(eps: f64) -> Vec<Table1Row> {
    let idx = build_index(stock_relation());
    let t = LinearTransform::moving_average(128, 20);
    let identity = LinearTransform::identity(128);

    let start = Instant::now();
    let a = idx.join_scan(eps, &t, ScanMode::Naive).unwrap();
    let a_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let b = idx.join_scan(eps, &t, ScanMode::EarlyAbandon).unwrap();
    let b_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let c = idx.join_index(eps, &identity).unwrap();
    let c_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let d = idx.join_index(eps, &t).unwrap();
    let d_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let e = idx.join_tree(eps, &t).unwrap();
    let e_ms = start.elapsed().as_secs_f64() * 1e3;

    vec![
        Table1Row {
            method: "a",
            description: "sequential scan, full distances, with T_mavg20",
            time_ms: a_ms,
            answers: a.pairs.len(),
            simulated_io: a.stats.exact_checks as u64,
        },
        Table1Row {
            method: "b",
            description: "sequential scan, early abandoning, with T_mavg20",
            time_ms: b_ms,
            answers: b.pairs.len(),
            simulated_io: b.stats.exact_checks as u64,
        },
        Table1Row {
            method: "c",
            description: "index join (range query per sequence), no transformation",
            time_ms: c_ms,
            answers: c.pairs.len(),
            simulated_io: c.stats.index.nodes_visited + c.stats.candidates as u64,
        },
        Table1Row {
            method: "d",
            description: "index join with T_mavg20 applied to index and search rectangles",
            time_ms: d_ms,
            answers: d.pairs.len(),
            simulated_io: d.stats.index.nodes_visited + d.stats.candidates as u64,
        },
        Table1Row {
            method: "e*",
            description: "tree-to-tree spatial join with T_mavg20 (extension)",
            time_ms: e_ms,
            answers: e.pairs.len(),
            simulated_io: e.stats.index.nodes_visited + e.stats.candidates as u64,
        },
    ]
}

/// Ablation: index filter power vs cut-off `k`.
#[derive(Debug, Clone, Copy)]
pub struct KSweepPoint {
    /// Number of indexed coefficients.
    pub k: usize,
    /// Mean query time (ms).
    pub query_ms: f64,
    /// Mean candidates per query.
    pub candidates: f64,
    /// Mean false hits per query.
    pub false_hits: f64,
}

/// Runs the k-sweep ablation on the stock relation.
pub fn k_sweep(ks: &[usize]) -> Vec<KSweepPoint> {
    let relation = stock_relation();
    let t = LinearTransform::moving_average(128, 20);
    let window = QueryWindow::default();
    let mut out = Vec::new();
    for &k in ks {
        let cfg = IndexConfig {
            schema: FeatureSchema::NormalForm { k },
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, relation.clone()).unwrap();
        let mut cand = 0usize;
        let mut fh = 0usize;
        let queries: Vec<TimeSeries> = (0..QUERY_REPEATS)
            .map(|i| idx.series(i * 50).unwrap().clone())
            .collect();
        let ms = time_ms(1, || {
            for q in &queries {
                let (_, s) = idx.range_query(q, 1.5, &t, &window).unwrap();
                cand += s.candidates;
                fh += s.false_hits;
            }
        }) / QUERY_REPEATS as f64;
        out.push(KSweepPoint {
            k,
            query_ms: ms,
            candidates: cand as f64 / QUERY_REPEATS as f64,
            false_hits: fh as f64 / QUERY_REPEATS as f64,
        });
    }
    out
}

/// Ablation: polar vs rectangular space (with a transformation legal in
/// both: `T_rev`). Returns (polar ms, rect ms, polar accesses, rect
/// accesses).
pub fn space_ablation() -> (f64, f64, u64, u64) {
    let relation = stock_relation();
    let t = LinearTransform::reverse(128);
    let window = QueryWindow::default();
    let polar = SimilarityIndex::build(IndexConfig::default(), relation.clone()).unwrap();
    let rect = SimilarityIndex::build(
        IndexConfig {
            space: SpaceKind::Rectangular,
            ..IndexConfig::default()
        },
        relation,
    )
    .unwrap();
    let q = polar.series(3).unwrap().clone();
    let mut acc_p = 0;
    let mut acc_r = 0;
    let p_ms = time_ms(QUERY_REPEATS, || {
        let (_, s) = polar.range_query(&q, 4.0, &t, &window).unwrap();
        acc_p = s.index.nodes_visited;
    });
    let r_ms = time_ms(QUERY_REPEATS, || {
        let (_, s) = rect.range_query(&q, 4.0, &t, &window).unwrap();
        acc_r = s.index.nodes_visited;
    });
    (p_ms, r_ms, acc_p, acc_r)
}

/// Ablation: STR bulk load vs repeated insertion, and forced reinsert
/// on/off. Returns (bulk ms, incremental ms, incremental-no-reinsert ms).
pub fn build_ablation() -> (f64, f64, f64) {
    let relation = stock_relation();
    let bulk = time_ms(3, || {
        let _ = SimilarityIndex::build(IndexConfig::default(), relation.clone()).unwrap();
    });
    let incr = time_ms(3, || {
        let _ = SimilarityIndex::build(
            IndexConfig {
                bulk_load: false,
                ..IndexConfig::default()
            },
            relation.clone(),
        )
        .unwrap();
    });
    let no_reinsert = time_ms(3, || {
        let _ = SimilarityIndex::build(
            IndexConfig {
                bulk_load: false,
                rtree: RTreeConfig::default().without_reinsert(),
                ..IndexConfig::default()
            },
            relation.clone(),
        )
        .unwrap();
    });
    (bulk, incr, no_reinsert)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random_walks(5, 16, 1), random_walks(5, 16, 1));
        let s = stock_relation();
        assert_eq!(s.len(), 1067);
        assert!(s.iter().all(|x| x.len() == 128));
    }

    #[test]
    fn fig8_point_runs() {
        let p = fig8_point(100, 64, 9);
        assert!(p.with_transform_ms >= 0.0 && p.baseline_ms >= 0.0);
        assert!(p.with_transform_accesses > 0);
    }

    #[test]
    fn calibration_hits_target_roughly() {
        let idx = build_index(stock_relation()[..300].to_vec());
        let t = LinearTransform::moving_average(128, 20);
        let eps = calibrate_join_eps(&idx, &t, 12);
        let n = idx
            .join_scan(eps, &t, ScanMode::EarlyAbandon)
            .unwrap()
            .pairs
            .len();
        assert!(
            (4..=40).contains(&n),
            "calibrated to {n} pairs at eps {eps}"
        );
    }
}
