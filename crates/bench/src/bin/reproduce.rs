//! Regenerates every figure and table of the paper's evaluation section
//! on this machine, printing paper-shaped rows.
//!
//! Usage: `cargo run --release -p tsq-bench --bin reproduce [fig8|fig9|fig10|fig11|fig12|table1|ablations|all]`

use tsq_bench::*;
use tsq_core::LinearTransform;

/// Every runnable target, in `all` execution order. Validation, usage text
/// and dispatch all derive from this one table.
const TARGETS: [(&str, fn()); 7] = [
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("table1", run_table1),
    ("ablations", ablations),
];

fn usage() -> String {
    let names: Vec<&str> = TARGETS.iter().map(|(name, _)| *name).collect();
    format!(
        "usage: reproduce [{}|all]\n\
         Regenerates the paper's Section-5 figures and Table 1 on this machine,\n\
         printing paper-shaped rows (wall-clock time plus simulated disk accesses).",
        names.join("|")
    )
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "--help" | "-h" | "help" => println!("{}", usage()),
        "all" => {
            for (_, run) in TARGETS {
                run();
            }
        }
        name => match TARGETS.iter().find(|(n, _)| *n == name) {
            Some((_, run)) => run(),
            None => {
                eprintln!("unknown target {name:?}\n{}", usage());
                std::process::exit(2);
            }
        },
    }
}

fn header(title: &str, cols: &str) {
    println!("\n=== {title} ===");
    println!("{cols}");
}

fn fig8() {
    header(
        "Figure 8: time per query vs sequence length (1000 sequences, identity transform)",
        "len      with-T ms   plain ms   with-T accesses   plain accesses",
    );
    for &len in LENGTHS {
        let p = fig8_point(1000, len, 8_000 + len as u64);
        println!(
            "{:5}    {:8.3}    {:8.3}   {:15}   {:14}",
            len, p.with_transform_ms, p.baseline_ms, p.with_transform_accesses, p.baseline_accesses
        );
    }
    println!("(paper: the two curves differ only by a constant CPU cost; same disk accesses)");
}

fn fig9() {
    header(
        "Figure 9: time per query vs number of sequences (length 128, identity transform)",
        "count    with-T ms   plain ms   with-T accesses   plain accesses",
    );
    for &count in CARDINALITIES {
        let p = fig9_point(count, 9_000 + count as u64);
        println!(
            "{:5}    {:8.3}    {:8.3}   {:15}   {:14}",
            count,
            p.with_transform_ms,
            p.baseline_ms,
            p.with_transform_accesses,
            p.baseline_accesses
        );
    }
}

fn fig10() {
    header(
        "Figure 10: index vs sequential scan vs sequence length (1000 sequences, T_mavg20)",
        "len      index ms    scan ms    speedup   index accesses",
    );
    for &len in LENGTHS {
        let p = fig10_point(1000, len, 10_000 + len as u64);
        println!(
            "{:5}    {:8.3}   {:8.3}   {:6.1}x   {:14}",
            len,
            p.with_transform_ms,
            p.baseline_ms,
            p.baseline_ms / p.with_transform_ms.max(1e-9),
            p.with_transform_accesses
        );
    }
    println!("(paper: index much faster; the gap grows with sequence length)");
}

fn fig11() {
    header(
        "Figure 11: index vs sequential scan vs number of sequences (length 128, T_mavg20)",
        "count    index ms    scan ms    speedup   index accesses",
    );
    for &count in CARDINALITIES {
        let p = fig11_point(count, 11_000 + count as u64);
        println!(
            "{:5}    {:8.3}   {:8.3}   {:6.1}x   {:14}",
            count,
            p.with_transform_ms,
            p.baseline_ms,
            p.baseline_ms / p.with_transform_ms.max(1e-9),
            p.with_transform_accesses
        );
    }
}

fn fig12() {
    header(
        "Figure 12: time per query vs answer-set size (1067 stocks, length 128, T_mavg20)",
        "answers   index ms    scan ms    winner",
    );
    let targets = [0usize, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 500];
    for p in fig12_curve(&targets) {
        println!(
            "{:6}    {:8.3}   {:8.3}    {}",
            p.answers,
            p.with_transform_ms,
            p.baseline_ms,
            if p.with_transform_ms <= p.baseline_ms {
                "index"
            } else {
                "scan"
            }
        );
    }
    println!(
        "(paper: the index wins until the answer set reaches roughly a third of the relation)"
    );
}

fn run_table1() {
    println!("\n=== Table 1: spatial self-join, 1067 stocks, length 128, T_mavg20 ===");
    let idx = build_index(stock_relation());
    let t = LinearTransform::moving_average(128, 20);
    let eps = calibrate_join_eps(&idx, &t, 12);
    println!("calibrated eps = {eps:.4} (targeting the paper's 12-pair answer)\n");
    println!("method   time (ms)   simulated I/O   answer size   description");
    for row in table1(eps) {
        println!(
            "{:6}   {:9.1}   {:13}   {:11}   {}",
            row.method, row.time_ms, row.simulated_io, row.answers, row.description
        );
    }
    println!("(paper: a 20:36min, b 2:31min, c 10.1s answers 3x2, d 17.7s answers 12x2)");
}

fn ablations() {
    println!("\n=== Ablation: cut-off k vs filter power (stock relation, T_mavg20) ===");
    println!("k    query ms   candidates   false hits");
    for p in k_sweep(&[1, 2, 3, 4, 5]) {
        println!(
            "{:2}   {:8.3}   {:10.1}   {:10.1}",
            p.k, p.query_ms, p.candidates, p.false_hits
        );
    }

    let (p_ms, r_ms, p_acc, r_acc) = space_ablation();
    println!("\n=== Ablation: polar vs rectangular space (T_rev) ===");
    println!("polar:       {p_ms:8.3} ms, {p_acc} node accesses");
    println!("rectangular: {r_ms:8.3} ms, {r_acc} node accesses");

    let (bulk, incr, no_re) = build_ablation();
    println!("\n=== Ablation: index construction (1067 stocks) ===");
    println!("STR bulk load:                 {bulk:8.1} ms");
    println!("repeated insert (R* reinsert): {incr:8.1} ms");
    println!("repeated insert (no reinsert): {no_re:8.1} ms");
}
