//! # tsq-series — time-series substrate for similarity queries
//!
//! Value types and sequence operations underlying the paper *Similarity-
//! Based Queries for Time Series Data* (Rafiei & Mendelzon, SIGMOD 1997):
//!
//! - [`series::TimeSeries`] — the sequence type (finite `f64` values);
//! - [`normal::NormalForm`] — Goldin–Kanellakis normal forms (Equation 9),
//!   the representation the paper indexes;
//! - [`moving_average`] — the paper's circular moving average (equal to a
//!   circular convolution, hence expressible as a frequency-domain
//!   transformation), the classical windowed variant, and weighted kernels;
//! - [`warp`] — integer time stretching (Example 1.2 / Appendix A);
//! - [`distance`] — Euclidean (with early abandoning, the optimization
//!   behind the paper's fast sequential-scan baseline), city-block and
//!   Chebyshev distances;
//! - [`generate`] — the paper's random-walk workload and a synthetic
//!   stock-market generator substituting for the defunct MIT stock archive;
//! - [`io`] — one-series-per-line CSV persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod generate;
pub mod io;
pub mod moving_average;
pub mod normal;
pub mod series;
pub mod stats;
pub mod warp;

pub use normal::NormalForm;
pub use series::{NonFiniteValue, TimeSeries};
