//! Workload generators.
//!
//! Two sources of data drive the paper's experiments:
//!
//! 1. **Synthetic random walks** (Section 5): `x_0 = y` with `y` drawn from
//!    `[20, 99]`, then `x_i = x_{i-1} + z_i` with steps `z_i` drawn from
//!    `[-4, 4]`. [`RandomWalkGenerator`] reproduces this exactly.
//! 2. **Real stock closing prices** from `ftp.ai.mit.edu/pub/stocks/results/`
//!    (1067 series of length 128). That archive no longer exists, so
//!    [`StockGenerator`] substitutes a synthetic market: geometric random
//!    walks driven by a small set of latent market/sector factors, which
//!    plants realistic groups of co-moving and oppositely-moving stocks.
//!    The substitution preserves what the experiments rely on — energy
//!    concentrated in low DFT coefficients plus a small population of
//!    strongly-(anti)correlated pairs for the join and hedging queries.
//!
//! All generators are deterministic given a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::series::TimeSeries;

/// Generates the paper's random-walk sequences (Section 5).
#[derive(Debug)]
pub struct RandomWalkGenerator {
    rng: StdRng,
    /// Start-value range (paper: `[20, 99]`).
    pub start_range: (f64, f64),
    /// Step range (paper: `[-4, 4]`).
    pub step_range: (f64, f64),
}

impl RandomWalkGenerator {
    /// Creates a generator with the paper's parameters.
    pub fn new(seed: u64) -> Self {
        RandomWalkGenerator {
            rng: StdRng::seed_from_u64(seed),
            start_range: (20.0, 99.0),
            step_range: (-4.0, 4.0),
        }
    }

    /// Generates one series of the given length.
    pub fn series(&mut self, len: usize) -> TimeSeries {
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return TimeSeries::new(out);
        }
        let mut v = self
            .rng
            .random_range(self.start_range.0..=self.start_range.1);
        out.push(v);
        for _ in 1..len {
            v += self.rng.random_range(self.step_range.0..=self.step_range.1);
            out.push(v);
        }
        TimeSeries::new(out)
    }

    /// Generates a whole relation of `count` series of equal length.
    pub fn relation(&mut self, count: usize, len: usize) -> Vec<TimeSeries> {
        (0..count).map(|_| self.series(len)).collect()
    }
}

/// Synthetic stock-market generator (substitution for the paper's real
/// stock data; see the crate docs and DESIGN.md).
///
/// Each stock's daily log-return is a mix of a market factor, one of
/// `sectors` sector factors (with either positive or negative loading —
/// negative loadings create the "opposite movement" pairs of Example 2.2),
/// and idiosyncratic noise; prices follow the exponentiated cumulative
/// returns from a per-stock base price.
#[derive(Debug)]
pub struct StockGenerator {
    rng: StdRng,
    /// Number of sector factors.
    pub sectors: usize,
    /// Daily market volatility.
    pub market_vol: f64,
    /// Daily sector volatility.
    pub sector_vol: f64,
    /// Daily idiosyncratic volatility.
    pub idio_vol: f64,
    /// Fraction of stocks loading *negatively* on their sector (hedging
    /// candidates).
    pub inverse_fraction: f64,
    /// Fraction of stocks that are *twins*: noisy near-copies of an earlier
    /// stock (index trackers / dual listings). Twins give all-pairs joins a
    /// small population of genuinely similar pairs, as the paper's real
    /// stock relation had (Table 1 finds 12 similar pairs among 1067).
    pub twin_fraction: f64,
    /// Range of market-factor loadings (heterogeneous betas spread the
    /// pairwise-distance distribution, as in real markets).
    pub beta_range: (f64, f64),
    /// Range of daily log-drifts (strong trends differentiate smoothed
    /// shapes).
    pub drift_range: (f64, f64),
}

impl StockGenerator {
    /// Creates a generator with realistic default parameters.
    pub fn new(seed: u64) -> Self {
        StockGenerator {
            rng: StdRng::seed_from_u64(seed),
            sectors: 12,
            market_vol: 0.008,
            sector_vol: 0.012,
            idio_vol: 0.006,
            inverse_fraction: 0.1,
            twin_fraction: 0.02,
            beta_range: (0.3, 2.0),
            drift_range: (-0.004, 0.004),
        }
    }

    /// Standard normal via Box–Muller (rand's core crate has no normal
    /// distribution; this keeps us inside the approved dependency list).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.random_range(f64::EPSILON..1.0f64);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Generates `count` stock price series of `len` days.
    pub fn relation(&mut self, count: usize, len: usize) -> Vec<TimeSeries> {
        if len == 0 {
            return vec![TimeSeries::new(Vec::new()); count];
        }
        // Latent factor paths.
        let market: Vec<f64> = (0..len).map(|_| self.gauss() * self.market_vol).collect();
        let sector_paths: Vec<Vec<f64>> = (0..self.sectors)
            .map(|_| (0..len).map(|_| self.gauss() * self.sector_vol).collect())
            .collect();

        let mut out: Vec<TimeSeries> = Vec::with_capacity(count);
        for i in 0..count {
            // Twin: a small-tracking-error copy of a random earlier stock.
            // (The draw is skipped entirely when the feature is disabled so
            // that twin_fraction = 0 reproduces the pre-twin random stream.)
            if self.twin_fraction > 0.0
                && !out.is_empty()
                && self.rng.random_range(0.0..1.0) < self.twin_fraction
            {
                let src = self.rng.random_range(0..out.len());
                let scale = self.rng.random_range(0.25..4.0f64);
                // Tracking error varies per twin: the tightest twins stay
                // similar even without smoothing (the paper's method (c)
                // finds 3 raw-similar pairs); looser twins only match after
                // a moving average (method (d) finds 12).
                // Log-uniform: a substantial share of twins track tightly
                // enough to be similar even without smoothing.
                let lo = (5e-5f64).ln();
                let hi = (4e-3f64).ln();
                let tracking = self.rng.random_range(lo..hi).exp();
                let vals: Vec<f64> = out[src]
                    .iter()
                    .map(|&v| v * scale * (self.gauss() * tracking).exp())
                    .collect();
                out.push(TimeSeries::new(vals));
                continue;
            }
            let sector = i % self.sectors.max(1);
            let load: f64 = if self.rng.random_range(0.0..1.0) < self.inverse_fraction {
                -1.0
            } else {
                1.0
            };
            let beta = self.rng.random_range(self.beta_range.0..=self.beta_range.1);
            let drift = self
                .rng
                .random_range(self.drift_range.0..=self.drift_range.1);
            let base = self.rng.random_range(5.0..80.0);
            let mut price = base;
            let mut vals = Vec::with_capacity(len);
            for t in 0..len {
                let r = drift
                    + beta * market[t]
                    + load * sector_paths[sector][t]
                    + self.gauss() * self.idio_vol;
                price *= r.exp();
                vals.push(price);
            }
            out.push(TimeSeries::new(vals));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normal_form;
    use crate::stats::pearson;

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let mut a = RandomWalkGenerator::new(7);
        let mut b = RandomWalkGenerator::new(7);
        assert_eq!(a.series(50), b.series(50));
        let mut c = RandomWalkGenerator::new(8);
        assert_ne!(a.series(50), c.series(50));
    }

    #[test]
    fn random_walk_respects_parameters() {
        let mut g = RandomWalkGenerator::new(42);
        for _ in 0..20 {
            let s = g.series(100);
            assert!(s[0] >= 20.0 && s[0] <= 99.0, "start {}", s[0]);
            for w in s.values().windows(2) {
                let step = w[1] - w[0];
                assert!((-4.0..=4.0).contains(&step), "step {step}");
            }
        }
    }

    #[test]
    fn relation_shape() {
        let mut g = RandomWalkGenerator::new(1);
        let rel = g.relation(10, 64);
        assert_eq!(rel.len(), 10);
        assert!(rel.iter().all(|s| s.len() == 64));
    }

    #[test]
    fn zero_length_series() {
        let mut g = RandomWalkGenerator::new(1);
        assert!(g.series(0).is_empty());
    }

    #[test]
    fn stocks_have_positive_prices() {
        let mut g = StockGenerator::new(3);
        let rel = g.relation(50, 128);
        assert_eq!(rel.len(), 50);
        for s in &rel {
            assert!(s.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn stocks_deterministic_per_seed() {
        let a = StockGenerator::new(11).relation(5, 32);
        let b = StockGenerator::new(11).relation(5, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn same_sector_stocks_correlate() {
        // Stocks i and i + sectors share a sector factor; with positive
        // loadings their normal forms should correlate far more than
        // cross-sector pairs on average. A single draw can violate this
        // (the shared market factor occasionally dominates one relation),
        // so the margin is averaged over several seeds to make the test a
        // statement about the generator rather than about one RNG stream.
        let mut margins = Vec::new();
        for seed in 1..=6 {
            let mut g = StockGenerator::new(seed);
            g.inverse_fraction = 0.0; // all-positive loadings for this test
            g.twin_fraction = 0.0; // sector pairing must stay deterministic
            g.drift_range = (0.0, 0.0); // no trends: isolate factor structure
            g.beta_range = (1.0, 1.0);
            let sectors = g.sectors;
            let rel = g.relation(3 * sectors, 128);
            let mut same = Vec::new();
            let mut diff = Vec::new();
            for i in 0..sectors {
                let a = normal_form(&rel[i]);
                let b = normal_form(&rel[i + sectors]);
                same.push(pearson(a.values(), b.values()));
                let c = normal_form(&rel[(i + 1) % sectors + sectors]);
                diff.push(pearson(a.values(), c.values()));
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            margins.push(avg(&same) - avg(&diff));
        }
        let mean_margin = margins.iter().sum::<f64>() / margins.len() as f64;
        assert!(
            mean_margin > 0.2,
            "mean same-vs-cross-sector correlation margin {mean_margin} (per-seed: {margins:?})"
        );
    }

    #[test]
    fn inverse_loadings_anticorrelate() {
        let mut g = StockGenerator::new(9);
        g.inverse_fraction = 1.0; // every stock inverse...
        g.twin_fraction = 0.0;
        let sectors = g.sectors;
        let all_inverse = g.relation(sectors, 128);
        let mut g2 = StockGenerator::new(9);
        g2.inverse_fraction = 0.0;
        g2.twin_fraction = 0.0;
        let all_direct = g2.relation(sectors, 128);
        // Different rng consumption patterns make exact pairing loose, so
        // just verify the generator produces strongly negatively correlated
        // pairs *somewhere* between the two relations.
        let mut found = false;
        'outer: for a in &all_inverse {
            for b in &all_direct {
                let c = pearson(normal_form(a).values(), normal_form(b).values());
                if c < -0.5 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected at least one strongly anti-correlated pair");
    }
}
