//! Plain-text persistence for relations of time series.
//!
//! One series per line, comma-separated values — the natural format for
//! dumping generated workloads and re-loading them in examples or external
//! tools. Parsing is strict: any malformed number aborts with a descriptive
//! error.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::series::TimeSeries;

/// Errors arising while reading a relation from disk.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A value failed to parse as `f64`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, token } => {
                write!(f, "line {line}: cannot parse {token:?} as a number")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes one series per line, values comma-separated.
pub fn save_csv(path: &Path, relation: &[TimeSeries]) -> Result<(), IoError> {
    let mut out = BufWriter::new(File::create(path)?);
    for s in relation {
        let mut first = true;
        for v in s.iter() {
            if !first {
                write!(out, ",")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a relation written by [`save_csv`]. Empty lines produce empty
/// series.
pub fn load_csv(path: &Path) -> Result<Vec<TimeSeries>, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut relation = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            relation.push(TimeSeries::new(Vec::new()));
            continue;
        }
        let mut values = Vec::new();
        for token in trimmed.split(',') {
            let token = token.trim();
            // `parse` happily produces NaN ("nan") and ±∞ ("inf", or any
            // overflowing literal like 1e999); those would panic deep in
            // the engine, so they are rejected here as parse errors.
            let v: f64 = token.parse().map_err(|_| IoError::Parse {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            if !v.is_finite() {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    token: token.to_string(),
                });
            }
            values.push(v);
        }
        relation.push(TimeSeries::new(values));
    }
    Ok(relation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsq-series-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.csv");
        let rel = vec![
            TimeSeries::from([1.0, 2.5, -3.0]),
            TimeSeries::from([42.0]),
            TimeSeries::new(vec![]),
        ];
        save_csv(&path, &rel).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(rel, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_error_reports_location() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\n3.0,oops\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        match err {
            IoError::Parse { line, token } => {
                assert_eq!(line, 2);
                assert_eq!(token, "oops");
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_values_rejected() {
        let path = tmp("nonfinite.csv");
        for (content, token) in [
            ("1.0,nan,3.0\n", "nan"),
            ("inf\n", "inf"),
            ("2.0,-1e999\n", "-1e999"),
        ] {
            std::fs::write(&path, content).unwrap();
            match load_csv(&path).unwrap_err() {
                IoError::Parse { line, token: t } => {
                    assert_eq!(line, 1);
                    assert_eq!(t, token);
                }
                other => panic!("{content:?}: unexpected error {other}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_csv(Path::new("/nonexistent/tsq.csv")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("I/O error"));
    }
}
