//! Time warping by integer stretch factors (Example 1.2 and Appendix A).
//!
//! The paper's warping replaces every value `v_i` by `m` copies of itself,
//! turning a series sampled every `m` days into one comparable with a
//! daily-sampled series. The frequency-domain coefficients of the warp are
//! derived in Appendix A and implemented in `tsq-core`; this module provides
//! the time-domain operation and its inverse.

use crate::series::TimeSeries;

/// Stretches the time dimension by factor `m >= 1`: each value is repeated
/// `m` times (`s'_{mi} = ... = s'_{m(i+1)-1} = s_i`, Equation 16).
///
/// # Panics
/// Panics if `m == 0`.
pub fn stretch(s: &TimeSeries, m: usize) -> TimeSeries {
    assert!(m >= 1, "stretch factor must be at least 1");
    let mut out = Vec::with_capacity(s.len() * m);
    for &v in s.iter() {
        for _ in 0..m {
            out.push(v);
        }
    }
    TimeSeries::new(out)
}

/// Inverse of [`stretch`] for exactly-stretched inputs: keeps every `m`-th
/// value. Returns `None` if the length is not divisible by `m` or the series
/// is not constant on every length-`m` block.
pub fn compress_exact(s: &TimeSeries, m: usize) -> Option<TimeSeries> {
    assert!(m >= 1, "stretch factor must be at least 1");
    if m == 1 {
        return Some(s.clone());
    }
    if s.len() % m != 0 {
        return None;
    }
    let v = s.values();
    let mut out = Vec::with_capacity(s.len() / m);
    for block in v.chunks_exact(m) {
        if block.iter().any(|&x| x != block[0]) {
            return None;
        }
        out.push(block[0]);
    }
    Some(TimeSeries::new(out))
}

/// Downsamples by keeping every `m`-th value (no constancy requirement) —
/// how a lower-frequency observer would have recorded the series.
pub fn downsample(s: &TimeSeries, m: usize) -> TimeSeries {
    assert!(m >= 1, "factor must be at least 1");
    TimeSeries::new(s.iter().copied().step_by(m).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_2() {
        // p = (20, 21, 20, 23) stretched by 2 gives s = (20,20,21,21,20,20,23,23).
        let p = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
        let s = stretch(&p, 2);
        assert_eq!(
            s.values(),
            &[20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]
        );
    }

    #[test]
    fn stretch_by_one_is_identity() {
        let p = TimeSeries::from([1.0, 2.0]);
        assert_eq!(stretch(&p, 1), p);
    }

    #[test]
    fn compress_inverts_stretch() {
        let p = TimeSeries::from([5.0, -1.0, 3.0]);
        for m in 1..=4 {
            let s = stretch(&p, m);
            assert_eq!(compress_exact(&s, m), Some(p.clone()));
        }
    }

    #[test]
    fn compress_rejects_non_stretched() {
        let s = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(compress_exact(&s, 2), None);
        // Wrong divisibility.
        let t = TimeSeries::from([1.0, 1.0, 2.0]);
        assert_eq!(compress_exact(&t, 2), None);
    }

    #[test]
    fn downsample_keeps_every_mth() {
        let s = TimeSeries::from([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(downsample(&s, 2).values(), &[0.0, 2.0, 4.0]);
        assert_eq!(downsample(&s, 3).values(), &[0.0, 3.0]);
    }

    #[test]
    fn stretch_preserves_mean() {
        let p = TimeSeries::from([2.0, 4.0, 9.0]);
        let s = stretch(&p, 3);
        assert!((p.mean() - s.mean()).abs() < 1e-12);
    }
}
