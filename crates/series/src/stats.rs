//! Basic descriptive statistics used by normal forms and feature
//! extraction.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance (divides by `n`); 0 for slices shorter than 1.
pub fn variance_population(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation (GK95 normal forms standardize by this).
pub fn std_population(values: &[f64]) -> f64 {
    variance_population(values).sqrt()
}

/// Sample variance (divides by `n - 1`); 0 for slices shorter than 2.
pub fn variance_sample(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_sample(values: &[f64]) -> f64 {
    variance_sample(values).sqrt()
}

/// Pearson correlation of two equal-length slices; 0 when either side is
/// constant. Used by the synthetic stock generator's tests to verify that
/// planted co-movers / opposite movers really correlate.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation requires equal lengths");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn variance_population_vs_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance_population(&xs) - 4.0).abs() < 1e-12);
        assert!((variance_sample(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_variances() {
        assert_eq!(variance_population(&[5.0]), 0.0);
        assert_eq!(variance_sample(&[5.0]), 0.0);
        assert_eq!(std_population(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
