//! Normal forms (Goldin & Kanellakis 1995, Equation 9 of the paper).
//!
//! `s'_i = (s_i - mean(s)) / std(s)`: shift the mean to zero and scale by
//! the inverse standard deviation. The paper builds its index over normal
//! forms, storing the original mean and standard deviation as two extra
//! index dimensions so simple shift/scale similarity remains expressible.

use crate::series::TimeSeries;

/// A series together with the mean/std that were removed to normalize it —
/// enough to reconstruct the original exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalForm {
    /// The normalized series (zero mean, unit standard deviation — unless
    /// the input was constant, in which case all zeros).
    pub series: TimeSeries,
    /// Mean of the original series.
    pub mean: f64,
    /// Population standard deviation of the original series.
    pub std: f64,
}

impl NormalForm {
    /// Computes the normal form of `s` (Equation 9).
    ///
    /// A constant series has zero standard deviation; its normal form is
    /// defined here as the all-zero series (the limit of vanishing
    /// fluctuation), with `std` recorded as 0 so [`NormalForm::restore`]
    /// still reconstructs the original.
    pub fn of(s: &TimeSeries) -> NormalForm {
        let mean = s.mean();
        let std = s.std();
        let series = if std == 0.0 {
            TimeSeries::new(vec![0.0; s.len()])
        } else {
            s.map(|v| (v - mean) / std)
        };
        NormalForm { series, mean, std }
    }

    /// Undoes the normalization: `v * std + mean`.
    pub fn restore(&self) -> TimeSeries {
        self.series.map(|v| v * self.std + self.mean)
    }
}

/// Convenience: just the normalized series.
pub fn normal_form(s: &TimeSeries) -> TimeSeries {
    NormalForm::of(s).series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_mean_and_std() {
        let s = TimeSeries::from([3.0, 7.0, 5.0, 9.0, 1.0]);
        let nf = NormalForm::of(&s);
        assert!((nf.series.mean()).abs() < 1e-12);
        assert!((nf.series.std() - 1.0).abs() < 1e-12);
        assert!((nf.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn restore_roundtrips() {
        let s = TimeSeries::from([10.0, 12.0, 9.0, 14.0]);
        let nf = NormalForm::of(&s);
        let back = nf.restore();
        for (a, b) in s.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_series_becomes_zeros() {
        let s = TimeSeries::from([4.2, 4.2, 4.2]);
        let nf = NormalForm::of(&s);
        assert_eq!(nf.series.values(), &[0.0, 0.0, 0.0]);
        assert_eq!(nf.std, 0.0);
        let back = nf.restore();
        assert_eq!(back.values(), &[4.2, 4.2, 4.2]);
    }

    #[test]
    fn normalization_is_shift_scale_invariant() {
        // Normal forms identify series equal up to positive affine change.
        let s = TimeSeries::from([1.0, 3.0, 2.0, 5.0]);
        let t = s.scale(2.5).shift(-7.0);
        let a = normal_form(&s);
        let b = normal_form(&t);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(vec![]);
        let nf = NormalForm::of(&s);
        assert!(nf.series.is_empty());
        assert!(nf.restore().is_empty());
    }
}
