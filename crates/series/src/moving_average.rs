//! Moving averages.
//!
//! The paper uses a *circular* l-day moving average (Example 1.1): the
//! averaging window wraps around the end of the sequence, producing an
//! output of the same length `n`, so that the operation equals a circular
//! convolution with the kernel `(1/l, ..., 1/l, 0, ..., 0)` and is therefore
//! expressible as a frequency-domain transformation (Section 3.2). The
//! classical `n - l + 1`-length moving average is also provided; the two
//! "are almost the same" when `l << n`, which a test quantifies.

use crate::series::TimeSeries;

/// Circular `window`-point moving average: output value `i` is the mean of
/// the `window` values *ending* at position `i`, wrapping around the start
/// of the sequence. Output length equals input length, matching
/// `conv(s, m_l)` with the paper's kernel (Equation 11 with equal weights).
///
/// # Panics
/// Panics if `window` is zero or exceeds the sequence length.
pub fn circular_moving_average(s: &TimeSeries, window: usize) -> TimeSeries {
    weighted_circular_moving_average(s, &vec![1.0 / window as f64; window])
}

/// Circular weighted moving average with arbitrary kernel weights
/// `w_1..w_m` (Equation 11): output value `i` is
/// `sum_j w_{j+1} * s_{(i - j) mod n}`.
///
/// Trend-prediction kernels weight recent days more; smoothing kernels
/// weight the center (both discussed in Section 3.2).
///
/// # Panics
/// Panics if the kernel is empty or longer than the sequence.
pub fn weighted_circular_moving_average(s: &TimeSeries, weights: &[f64]) -> TimeSeries {
    let n = s.len();
    let m = weights.len();
    assert!(m > 0, "kernel must be non-empty");
    assert!(m <= n, "kernel longer than sequence ({m} > {n})");
    let v = s.values();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &w) in weights.iter().enumerate() {
            let idx = (i + n - j) % n;
            acc += w * v[idx];
        }
        out.push(acc);
    }
    TimeSeries::new(out)
}

/// Classical moving average: means over every in-bounds window, producing
/// `n - window + 1` values.
///
/// # Panics
/// Panics if `window` is zero or exceeds the sequence length.
pub fn moving_average(s: &TimeSeries, window: usize) -> TimeSeries {
    let n = s.len();
    assert!(window > 0, "window must be positive");
    assert!(window <= n, "window longer than sequence ({window} > {n})");
    let v = s.values();
    let inv = 1.0 / window as f64;
    let mut acc: f64 = v[..window].iter().sum();
    let mut out = Vec::with_capacity(n - window + 1);
    out.push(acc * inv);
    for i in window..n {
        acc += v[i] - v[i - window];
        out.push(acc * inv);
    }
    TimeSeries::new(out)
}

/// The frequency-domain kernel of the `window`-point circular moving
/// average as a length-`n` time-domain vector (the paper's `m_l`):
/// `(1/l, ..., 1/l, 0, ..., 0)`.
pub fn kernel(n: usize, window: usize) -> Vec<f64> {
    assert!(window > 0 && window <= n, "invalid kernel size");
    let mut k = vec![0.0; n];
    let w = 1.0 / window as f64;
    for v in &mut k[..window] {
        *v = w;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    #[test]
    fn circular_ma_small_example() {
        // s = (1, 2, 3, 4), window 2:
        // out_0 = (s_0 + s_3)/2 = 2.5 (wraps), out_1 = 1.5, out_2 = 2.5, out_3 = 3.5
        let s = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        let ma = circular_moving_average(&s, 2);
        assert_eq!(ma.values(), &[2.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn circular_ma_equals_convolution() {
        let s = TimeSeries::from([36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0]);
        let k = kernel(7, 3);
        let conv = tsq_dft::convolution::conv_real(s.values(), &k);
        let ma = circular_moving_average(&s, 3);
        for (a, b) in conv.iter().zip(ma.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn window_one_is_identity() {
        let s = TimeSeries::from([5.0, 1.0, 7.0]);
        assert_eq!(circular_moving_average(&s, 1).values(), s.values());
        assert_eq!(moving_average(&s, 1).values(), s.values());
    }

    #[test]
    fn full_window_is_global_mean() {
        let s = TimeSeries::from([1.0, 2.0, 3.0, 6.0]);
        let ma = circular_moving_average(&s, 4);
        for v in ma.iter() {
            assert!((v - 3.0).abs() < 1e-12);
        }
        let cls = moving_average(&s, 4);
        assert_eq!(cls.len(), 1);
        assert!((cls[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn classical_ma_length() {
        let s = TimeSeries::from([1.0, 2.0, 3.0, 4.0, 5.0]);
        let ma = moving_average(&s, 3);
        assert_eq!(ma.values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn weighted_ma_reduces_to_equal_weights() {
        let s = TimeSeries::from([3.0, -1.0, 4.0, 1.0, 5.0, 9.0]);
        let a = circular_moving_average(&s, 3);
        let b = weighted_circular_moving_average(&s, &[1.0 / 3.0; 3]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_ma_trend_kernel() {
        // Heavier weight on the most recent day.
        let s = TimeSeries::from([1.0, 2.0, 4.0]);
        let ma = weighted_circular_moving_average(&s, &[0.7, 0.3]);
        // out_0 = 0.7*s0 + 0.3*s2 = 0.7 + 1.2 = 1.9
        assert!((ma[0] - 1.9).abs() < 1e-12);
        assert!((ma[1] - (0.7 * 2.0 + 0.3 * 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window longer")]
    fn oversized_window_panics() {
        let s = TimeSeries::from([1.0, 2.0]);
        let _ = moving_average(&s, 3);
    }

    #[test]
    fn circular_and_classical_agree_when_window_small() {
        // "when the length of the window is small enough compared to the
        // length of the sequence ... both averages are almost the same"
        // (Example 1.1): away from the wrap-around region they coincide
        // exactly.
        let vals: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.17).sin() * 10.0 + 50.0)
            .collect();
        let s = TimeSeries::new(vals);
        let w = 5;
        let circ = circular_moving_average(&s, w);
        let cls = moving_average(&s, w);
        // circ[i] for i >= w-1 equals cls[i + 1 - w].
        for i in (w - 1)..s.len() {
            // The classical MA uses a sliding accumulator, so allow for its
            // accumulated rounding relative to the direct per-window sums.
            assert!((circ[i] - cls[i + 1 - w]).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_ma_smooths_towards_flat() {
        // Example 2.3's discussion: iterating the moving average keeps
        // reducing variability.
        let vals: Vec<f64> = (0..64).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut s = TimeSeries::new(vals);
        let mut prev_std = s.std();
        for _ in 0..3 {
            s = circular_moving_average(&s, 8);
            let cur = s.std();
            assert!(cur <= prev_std + 1e-12);
            prev_std = cur;
        }
    }

    #[test]
    fn ma_brings_similar_series_closer() {
        // Smoothing reduces distance contributed by uncorrelated noise.
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin() * 5.0).collect();
        let noise: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f64> = a.iter().zip(&noise).map(|(x, e)| x + e).collect();
        let sa = TimeSeries::new(a);
        let sb = TimeSeries::new(b);
        let before = euclidean(&sa, &sb);
        let after = euclidean(
            &circular_moving_average(&sa, 4),
            &circular_moving_average(&sb, 4),
        );
        assert!(after < before * 0.5, "MA should suppress alternating noise");
    }
}
