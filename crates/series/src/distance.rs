//! Distances between equal-length time series.

use crate::series::TimeSeries;

/// Euclidean distance `D(x, y) = sqrt(sum (x_i - y_i)^2)` — the paper's
/// baseline dissimilarity (Section 1).
///
/// # Panics
/// Panics if lengths differ.
pub fn euclidean(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Width of the blocked early-abandon kernel: the abandon check runs
/// once per this many elements, so the inner loop is branch-free and
/// auto-vectorizable.
const ABANDON_BLOCK: usize = 8;

/// Blocked early-abandoning **squared**-distance kernel: accumulates
/// `sum (x_i - y_i)^2` and returns `None` as soon as the partial sum
/// exceeds `limit`, checking once per 8-element block instead of once
/// per element.
///
/// This is the one shared kernel behind [`euclidean_early_abandon`] and
/// the subsequence engine's bounded scans. Checking per block is exact,
/// not approximate: squared terms are non-negative, so partial sums are
/// monotone non-decreasing — once a prefix exceeds `limit` every later
/// prefix does too, and the block-boundary check reaches the identical
/// `Some`/`None` decision as the per-element check, with the same
/// `<=`-stays `>`-abandons tie boundary. Accumulation order is strictly
/// left to right in a single accumulator, so a returned sum is
/// bit-identical to the naive loop's.
///
/// Slices of unequal length are compared over the shorter prefix; the
/// callers that require equal lengths assert it themselves.
pub fn distance_sq_within(x: &[f64], y: &[f64], limit: f64) -> Option<f64> {
    let n = x.len().min(y.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i + ABANDON_BLOCK <= n {
        // Squaring is element-independent and free to vectorize; the
        // adds stay ordered through one accumulator for bit-identity.
        let mut sq = [0.0; ABANDON_BLOCK];
        for j in 0..ABANDON_BLOCK {
            let d = x[i + j] - y[i + j];
            sq[j] = d * d;
        }
        for s in sq {
            acc += s;
        }
        if acc > limit {
            return None;
        }
        i += ABANDON_BLOCK;
    }
    // Per-element checks in the (at most 7-element) tail: the abandon
    // test only ever runs *after* an addition, exactly like the
    // pre-blocking kernel — so an empty input is `Some(0.0)` no matter
    // the limit.
    while i < n {
        let d = x[i] - y[i];
        acc += d * d;
        if acc > limit {
            return None;
        }
        i += 1;
    }
    Some(acc)
}

/// Early-abandoning Euclidean distance: returns `None` as soon as the
/// accumulated squared distance exceeds `threshold^2`. This is the
/// optimization the paper applies to make sequential scanning competitive
/// (Table 1, method (b): "stop the distance computation as soon as the
/// distance exceeds eps" — 10x faster than method (a)). Runs on the
/// blocked [`distance_sq_within`] kernel.
pub fn euclidean_early_abandon(x: &TimeSeries, y: &TimeSeries, threshold: f64) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    distance_sq_within(x.values(), y.values(), threshold * threshold).map(f64::sqrt)
}

/// City-block (L1) distance, mentioned in Section 1 as an alternative
/// dissimilarity.
pub fn city_block(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum()
}

/// Maximum (L∞) distance.
pub fn chebyshev(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_by_hand() {
        let x = TimeSeries::from([0.0, 0.0]);
        let y = TimeSeries::from([3.0, 4.0]);
        assert_eq!(euclidean(&x, &y), 5.0);
        assert_eq!(city_block(&x, &y), 7.0);
        assert_eq!(chebyshev(&x, &y), 4.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let x = TimeSeries::from([1.0, -2.0, 3.5]);
        assert_eq!(euclidean(&x, &x), 0.0);
        assert_eq!(city_block(&x, &x), 0.0);
    }

    #[test]
    fn early_abandon_consistency() {
        let x = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        let y = TimeSeries::from([2.0, 4.0, 1.0, 0.0]);
        let d = euclidean(&x, &y);
        assert_eq!(euclidean_early_abandon(&x, &y, d + 0.1), Some(d));
        assert_eq!(euclidean_early_abandon(&x, &y, d - 0.1), None);
    }

    /// Per-element early-abandon oracle: the pre-blocking implementation.
    fn naive_sq_within(x: &[f64], y: &[f64], limit: f64) -> Option<f64> {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            let d = a - b;
            acc += d * d;
            if acc > limit {
                return None;
            }
        }
        Some(acc)
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_per_element() {
        // Every length around the 8-wide block boundary, several limits
        // per pair: the blocked kernel must reach the identical
        // Some/None decision and, when Some, the bit-identical sum.
        let mut seed = 0x9E37_79B9_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        for len in 0..=40 {
            let x: Vec<f64> = (0..len).map(|_| next() * 4.0).collect();
            let y: Vec<f64> = (0..len).map(|_| next() * 4.0).collect();
            let full: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            for limit in [
                0.0,
                full * 0.25,
                full * 0.5,
                full - 1e-12,
                full,
                full + 1.0,
                f64::MAX,
            ] {
                let want = naive_sq_within(&x, &y, limit);
                let got = distance_sq_within(&x, &y, limit);
                match (got, want) {
                    (Some(g), Some(w)) => {
                        assert_eq!(g.to_bits(), w.to_bits(), "len {len} limit {limit}")
                    }
                    (None, None) => {}
                    other => panic!("len {len} limit {limit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_tie_boundary_is_exact() {
        // acc == limit exactly must NOT abandon (`<=` stays, `>` goes).
        let x = [2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let y = [0.0; 9];
        assert_eq!(distance_sq_within(&x, &y, 5.0), Some(5.0));
        assert_eq!(distance_sq_within(&x, &y, 4.999), None);
        // Exactly at the block boundary, too.
        assert_eq!(distance_sq_within(&x[..8], &y[..8], 4.0), Some(4.0));
        assert_eq!(distance_sq_within(&x[..8], &y[..8], 3.999), None);
    }

    #[test]
    fn metric_inequalities() {
        // chebyshev <= euclidean <= city_block for any pair.
        let x = TimeSeries::from([1.0, 5.0, -3.0, 0.5]);
        let y = TimeSeries::from([0.0, 2.0, 2.0, 2.0]);
        assert!(chebyshev(&x, &y) <= euclidean(&x, &y) + 1e-12);
        assert!(euclidean(&x, &y) <= city_block(&x, &y) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let _ = euclidean(&TimeSeries::from([1.0]), &TimeSeries::from([1.0, 2.0]));
    }

    #[test]
    fn paper_example_1_1_distance() {
        // D(s1, s2) = 11.92 for the sequences of Example 1.1.
        let s1 = TimeSeries::from([
            36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0,
            37.0,
        ]);
        let s2 = TimeSeries::from([
            40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0,
            34.0,
        ]);
        let d = euclidean(&s1, &s2);
        assert!((d - 11.92).abs() < 0.005, "got {d}");
    }
}
