//! Distances between equal-length time series.

use crate::series::TimeSeries;

/// Euclidean distance `D(x, y) = sqrt(sum (x_i - y_i)^2)` — the paper's
/// baseline dissimilarity (Section 1).
///
/// # Panics
/// Panics if lengths differ.
pub fn euclidean(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Early-abandoning Euclidean distance: returns `None` as soon as the
/// accumulated squared distance exceeds `threshold^2`. This is the
/// optimization the paper applies to make sequential scanning competitive
/// (Table 1, method (b): "stop the distance computation as soon as the
/// distance exceeds eps" — 10x faster than method (a)).
pub fn euclidean_early_abandon(x: &TimeSeries, y: &TimeSeries, threshold: f64) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    let limit = threshold * threshold;
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = a - b;
        acc += d * d;
        if acc > limit {
            return None;
        }
    }
    Some(acc.sqrt())
}

/// City-block (L1) distance, mentioned in Section 1 as an alternative
/// dissimilarity.
pub fn city_block(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum()
}

/// Maximum (L∞) distance.
pub fn chebyshev(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_by_hand() {
        let x = TimeSeries::from([0.0, 0.0]);
        let y = TimeSeries::from([3.0, 4.0]);
        assert_eq!(euclidean(&x, &y), 5.0);
        assert_eq!(city_block(&x, &y), 7.0);
        assert_eq!(chebyshev(&x, &y), 4.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let x = TimeSeries::from([1.0, -2.0, 3.5]);
        assert_eq!(euclidean(&x, &x), 0.0);
        assert_eq!(city_block(&x, &x), 0.0);
    }

    #[test]
    fn early_abandon_consistency() {
        let x = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        let y = TimeSeries::from([2.0, 4.0, 1.0, 0.0]);
        let d = euclidean(&x, &y);
        assert_eq!(euclidean_early_abandon(&x, &y, d + 0.1), Some(d));
        assert_eq!(euclidean_early_abandon(&x, &y, d - 0.1), None);
    }

    #[test]
    fn metric_inequalities() {
        // chebyshev <= euclidean <= city_block for any pair.
        let x = TimeSeries::from([1.0, 5.0, -3.0, 0.5]);
        let y = TimeSeries::from([0.0, 2.0, 2.0, 2.0]);
        assert!(chebyshev(&x, &y) <= euclidean(&x, &y) + 1e-12);
        assert!(euclidean(&x, &y) <= city_block(&x, &y) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let _ = euclidean(&TimeSeries::from([1.0]), &TimeSeries::from([1.0, 2.0]));
    }

    #[test]
    fn paper_example_1_1_distance() {
        // D(s1, s2) = 11.92 for the sequences of Example 1.1.
        let s1 = TimeSeries::from([
            36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0,
            37.0,
        ]);
        let s2 = TimeSeries::from([
            40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0,
            34.0,
        ]);
        let d = euclidean(&s1, &s2);
        assert!((d - 11.92).abs() < 0.005, "got {d}");
    }
}
