//! The time-series value type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A time series: "a sequence of real numbers, each number representing a
/// value at a time point" (Section 1 of the paper).
///
/// The type is a thin, immutable-by-convention wrapper over `Vec<f64>` with
/// the statistics and transformations the query engine needs. Values must be
/// finite; constructors enforce this so downstream geometry never sees NaN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

/// A non-finite (NaN or infinite) value was found where a time-series
/// sample is required.
///
/// Returned by [`TimeSeries::try_new`], the fallible boundary constructor:
/// a NaN flowing into the engine's geometry would corrupt every
/// `partial_cmp`-based ordering downstream, so values are rejected the
/// moment they enter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteValue {
    /// Position of the offending value within the candidate series.
    pub index: usize,
    /// The offending value (NaN or ±∞).
    pub value: f64,
}

impl fmt::Display for NonFiniteValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite value {} at position {}",
            self.value, self.index
        )
    }
}

impl std::error::Error for NonFiniteValue {}

impl TimeSeries {
    /// Wraps a vector of finite values.
    ///
    /// # Panics
    /// Panics if any value is not finite. Use [`TimeSeries::try_new`] at
    /// boundaries where the values come from untrusted input (parsed
    /// literals, CSV files) and a recoverable error is wanted instead.
    pub fn new(values: Vec<f64>) -> Self {
        match Self::try_new(values) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps a vector of values, rejecting NaN and ±∞ with a typed error
    /// instead of panicking.
    ///
    /// # Errors
    /// [`NonFiniteValue`] naming the first offending position.
    pub fn try_new(values: Vec<f64>) -> Result<Self, NonFiniteValue> {
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(NonFiniteValue { index, value });
            }
        }
        Ok(TimeSeries { values })
    }

    /// Appends values to the end of the series, rejecting NaN and ±∞
    /// *before* mutating: on error the series is exactly as it was, so
    /// streaming ingest can treat a failed extend as a no-op.
    ///
    /// # Errors
    /// [`NonFiniteValue`] naming the first offending position — reported
    /// as an absolute position in the would-be extended series.
    pub fn try_extend(&mut self, appended: &[f64]) -> Result<(), NonFiniteValue> {
        for (i, &value) in appended.iter().enumerate() {
            if !value.is_finite() {
                return Err(NonFiniteValue {
                    index: self.values.len() + i,
                    value,
                });
            }
        }
        self.values.extend_from_slice(appended);
        Ok(())
    }

    /// Number of time points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Iterator over values.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.values.iter()
    }

    /// Arithmetic mean; 0 for the empty series.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.values)
    }

    /// Population standard deviation; 0 for series shorter than 1.
    pub fn std(&self) -> f64 {
        crate::stats::std_population(&self.values)
    }

    /// Element-wise map, producing a new series.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries::new(self.values.iter().copied().map(f).collect())
    }

    /// The reversed series of Example 2.2: every value multiplied by −1
    /// (price movements mirrored). Note this is *negation*, not reversal of
    /// time order — the paper's `T_rev` flips the sign.
    pub fn negate(&self) -> TimeSeries {
        self.map(|v| -v)
    }

    /// Adds a constant to every value (a shift transformation).
    pub fn shift(&self, c: f64) -> TimeSeries {
        self.map(|v| v + c)
    }

    /// Multiplies every value by a constant (a scale transformation; the
    /// paper explicitly allows negative scales).
    pub fn scale(&self, c: f64) -> TimeSeries {
        self.map(|v| v * c)
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for TimeSeries {
    fn from(values: [f64; N]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = TimeSeries::from([1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s[1], 2.0);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.iter().sum::<f64>(), 6.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = TimeSeries::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn try_new_reports_position_and_value() {
        let err = TimeSeries::try_new(vec![1.0, 2.0, f64::NAN]).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.value.is_nan());
        let err = TimeSeries::try_new(vec![f64::INFINITY]).unwrap_err();
        assert_eq!(
            err,
            NonFiniteValue {
                index: 0,
                value: f64::INFINITY
            }
        );
        assert!(err.to_string().contains("position 0"));
        assert_eq!(
            TimeSeries::try_new(vec![1.0, -2.0]).unwrap().values(),
            &[1.0, -2.0]
        );
    }

    #[test]
    fn try_extend_is_atomic() {
        let mut s = TimeSeries::from([1.0, 2.0]);
        s.try_extend(&[3.0, 4.0]).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
        // A non-finite value anywhere in the batch leaves the series
        // untouched and reports its absolute position.
        let err = s.try_extend(&[5.0, f64::NAN, 6.0]).unwrap_err();
        assert_eq!(err.index, 5);
        assert!(err.value.is_nan());
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
        s.try_extend(&[]).unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn mean_and_std() {
        let s = TimeSeries::from([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negate_shift_scale() {
        let s = TimeSeries::from([1.0, -2.0]);
        assert_eq!(s.negate().values(), &[-1.0, 2.0]);
        assert_eq!(s.shift(3.0).values(), &[4.0, 1.0]);
        assert_eq!(s.scale(-2.0).values(), &[-2.0, 4.0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
        assert_eq!(s.to_string(), "(20,21,20,23)");
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
    }
}
