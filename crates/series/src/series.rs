//! The time-series value type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A time series: "a sequence of real numbers, each number representing a
/// value at a time point" (Section 1 of the paper).
///
/// The type is a thin, immutable-by-convention wrapper over `Vec<f64>` with
/// the statistics and transformations the query engine needs. Values must be
/// finite; constructors enforce this so downstream geometry never sees NaN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Wraps a vector of finite values.
    ///
    /// # Panics
    /// Panics if any value is not finite.
    pub fn new(values: Vec<f64>) -> Self {
        for (i, v) in values.iter().enumerate() {
            assert!(v.is_finite(), "non-finite value at position {i}");
        }
        TimeSeries { values }
    }

    /// Number of time points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Iterator over values.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.values.iter()
    }

    /// Arithmetic mean; 0 for the empty series.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.values)
    }

    /// Population standard deviation; 0 for series shorter than 1.
    pub fn std(&self) -> f64 {
        crate::stats::std_population(&self.values)
    }

    /// Element-wise map, producing a new series.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries::new(self.values.iter().copied().map(f).collect())
    }

    /// The reversed series of Example 2.2: every value multiplied by −1
    /// (price movements mirrored). Note this is *negation*, not reversal of
    /// time order — the paper's `T_rev` flips the sign.
    pub fn negate(&self) -> TimeSeries {
        self.map(|v| -v)
    }

    /// Adds a constant to every value (a shift transformation).
    pub fn shift(&self, c: f64) -> TimeSeries {
        self.map(|v| v + c)
    }

    /// Multiplies every value by a constant (a scale transformation; the
    /// paper explicitly allows negative scales).
    pub fn scale(&self, c: f64) -> TimeSeries {
        self.map(|v| v * c)
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for TimeSeries {
    fn from(values: [f64; N]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = TimeSeries::from([1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s[1], 2.0);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.iter().sum::<f64>(), 6.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = TimeSeries::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn mean_and_std() {
        let s = TimeSeries::from([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negate_shift_scale() {
        let s = TimeSeries::from([1.0, -2.0]);
        assert_eq!(s.negate().values(), &[-1.0, 2.0]);
        assert_eq!(s.shift(3.0).values(), &[4.0, 1.0]);
        assert_eq!(s.scale(-2.0).values(), &[-2.0, 4.0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
        assert_eq!(s.to_string(), "(20,21,20,23)");
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
    }
}
