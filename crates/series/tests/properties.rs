//! Property-based tests for the series substrate: metric axioms of the
//! distances, conservation laws of the moving averages, and time-warp
//! round-trips.

use proptest::prelude::*;
use tsq_series::distance::{chebyshev, city_block, euclidean, euclidean_early_abandon};
use tsq_series::moving_average::{
    circular_moving_average, moving_average, weighted_circular_moving_average,
};
use tsq_series::warp::{compress_exact, downsample, stretch};
use tsq_series::TimeSeries;

/// One bounded random series.
fn series(max_len: usize) -> impl Strategy<Value = TimeSeries> {
    prop::collection::vec(-1e3f64..1e3, 1..=max_len).prop_map(TimeSeries::new)
}

/// A pair of equal-length random series.
fn series_pair(max_len: usize) -> impl Strategy<Value = (TimeSeries, TimeSeries)> {
    (1usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
        )
    })
}

/// A triple of equal-length random series.
fn series_triple(max_len: usize) -> impl Strategy<Value = (TimeSeries, TimeSeries, TimeSeries)> {
    (1usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
        )
    })
}

/// A series together with a window in `1..=len`.
fn series_and_window(max_len: usize) -> impl Strategy<Value = (TimeSeries, usize)> {
    (1usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(TimeSeries::new),
            1..=n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- distance: metric axioms ----------------------------------------

    /// All three distances are symmetric.
    #[test]
    fn distances_symmetric((x, y) in series_pair(64)) {
        prop_assert!((euclidean(&x, &y) - euclidean(&y, &x)).abs() < 1e-9);
        prop_assert!((city_block(&x, &y) - city_block(&y, &x)).abs() < 1e-9);
        prop_assert!((chebyshev(&x, &y) - chebyshev(&y, &x)).abs() < 1e-9);
    }

    /// Identity of indiscernibles, the easy half: d(x, x) = 0 exactly.
    #[test]
    fn distance_identity(x in series(64)) {
        prop_assert_eq!(euclidean(&x, &x), 0.0);
        prop_assert_eq!(city_block(&x, &x), 0.0);
        prop_assert_eq!(chebyshev(&x, &x), 0.0);
    }

    /// Non-negativity, plus the norm ordering
    /// `chebyshev <= euclidean <= city_block`.
    #[test]
    fn distance_norm_ordering((x, y) in series_pair(64)) {
        let e = euclidean(&x, &y);
        let c = city_block(&x, &y);
        let m = chebyshev(&x, &y);
        prop_assert!(e >= 0.0 && c >= 0.0 && m >= 0.0);
        prop_assert!(m <= e + 1e-9);
        prop_assert!(e <= c + 1e-9);
    }

    /// The triangle inequality (the "triangle-ish bound": exact up to
    /// floating-point slack scaled to the magnitudes involved).
    #[test]
    fn distance_triangle((x, y, z) in series_triple(48)) {
        let slack = 1e-9 * (1.0 + euclidean(&x, &y) + euclidean(&y, &z));
        prop_assert!(euclidean(&x, &z) <= euclidean(&x, &y) + euclidean(&y, &z) + slack);
        prop_assert!(city_block(&x, &z) <= city_block(&x, &y) + city_block(&y, &z) + slack);
        prop_assert!(chebyshev(&x, &z) <= chebyshev(&x, &y) + chebyshev(&y, &z) + slack);
    }

    /// Early abandoning is sound: above-threshold distances return the true
    /// distance, below-threshold computations abandon.
    #[test]
    fn early_abandon_consistent((x, y) in series_pair(64)) {
        let d = euclidean(&x, &y);
        match euclidean_early_abandon(&x, &y, d + 1.0) {
            Some(got) => prop_assert!((got - d).abs() < 1e-9),
            None => prop_assert!(false, "abandoned below threshold"),
        }
        if d > 1e-6 {
            prop_assert_eq!(euclidean_early_abandon(&x, &y, d * 0.5), None);
        }
    }

    // ---- moving averages: conservation laws ------------------------------

    /// The circular moving average preserves both length and mean (every
    /// value enters exactly `window` windows with weight `1/window`).
    #[test]
    fn circular_ma_preserves_length_and_mean((s, w) in series_and_window(64)) {
        let ma = circular_moving_average(&s, w);
        prop_assert_eq!(ma.len(), s.len());
        prop_assert!((ma.mean() - s.mean()).abs() < 1e-9 * (1.0 + s.mean().abs()));
    }

    /// Smoothing never increases variability.
    #[test]
    fn circular_ma_contracts_std((s, w) in series_and_window(64)) {
        prop_assert!(circular_moving_average(&s, w).std() <= s.std() + 1e-9);
    }

    /// The classical moving average produces `n - window + 1` values, and a
    /// window of 1 is the identity for both variants (the circular variant
    /// exactly; the classical one up to its sliding-accumulator rounding).
    #[test]
    fn classical_ma_length((s, w) in series_and_window(64)) {
        prop_assert_eq!(moving_average(&s, w).len(), s.len() - w + 1);
        prop_assert_eq!(circular_moving_average(&s, 1), s.clone());
        for (a, b) in moving_average(&s, 1).iter().zip(s.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Equal weights reduce the weighted variant to the unweighted one.
    #[test]
    fn weighted_ma_equal_weights((s, w) in series_and_window(48)) {
        let a = circular_moving_average(&s, w);
        let b = weighted_circular_moving_average(&s, &vec![1.0 / w as f64; w]);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    // ---- warp: round-trips ------------------------------------------------

    /// `compress_exact` inverts `stretch` exactly (values are copied, so
    /// equality is bitwise).
    #[test]
    fn warp_roundtrip(s in series(48), m in 1usize..6) {
        let stretched = stretch(&s, m);
        prop_assert_eq!(stretched.len(), s.len() * m);
        prop_assert_eq!(compress_exact(&stretched, m), Some(s));
    }

    /// Downsampling a stretched series recovers the original as well.
    #[test]
    fn downsample_inverts_stretch(s in series(48), m in 1usize..6) {
        prop_assert_eq!(downsample(&stretch(&s, m), m), s);
    }

    /// Stretching preserves the mean and leaves pairwise Euclidean
    /// distances scaled by exactly `sqrt(m)`.
    #[test]
    fn stretch_preserves_mean_and_scales_distance((x, y) in series_pair(48), m in 1usize..6) {
        let sx = stretch(&x, m);
        prop_assert!((sx.mean() - x.mean()).abs() < 1e-9 * (1.0 + x.mean().abs()));
        let base = euclidean(&x, &y);
        let warped = euclidean(&sx, &stretch(&y, m));
        prop_assert!((warped - (m as f64).sqrt() * base).abs() < 1e-6 * (1.0 + base));
    }

    /// A non-constant block makes `compress_exact` reject, while plain
    /// `downsample` still succeeds.
    #[test]
    fn compress_rejects_tampered(s in series(32), m in 2usize..5) {
        let mut vals = stretch(&s, m).into_values();
        vals[0] += 1.0; // break constancy of the first block
        let tampered = TimeSeries::new(vals);
        prop_assert_eq!(compress_exact(&tampered, m), None);
        prop_assert_eq!(downsample(&tampered, m).len(), s.len());
    }
}
