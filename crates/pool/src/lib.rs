//! # tsq-pool — persistent work-stealing executor
//!
//! Every parallel path in the workspace used to pay thread-creation tax
//! on every call: `parallel_map` spawned and joined fresh OS threads per
//! invocation, so a sharded query scattering over 8 shards spawned 8
//! threads *per query* and batch throughput fell as parallelism grew.
//! This crate replaces that with one process-wide pool of long-lived
//! workers:
//!
//! - **Per-worker deques plus a shared injector.** Submissions are
//!   placed round-robin on the worker deques; a submission finding its
//!   target deque busy spills into the injector. An idle worker drains
//!   its own deque first, then the injector, then *steals* from the
//!   back of a sibling's deque — so a stalled worker never strands
//!   queued work.
//! - **Park/unpark idling.** Idle workers block on a condvar; a
//!   submission wakes exactly one. No spinning, no wakeup storms.
//! - **Lazy start.** [`Pool::global`] spawns its workers — sized by
//!   [`default_workers`], the cached `available_parallelism` — on first
//!   use; a process that never fans out never starts a thread.
//! - **Panic isolation.** A panicking closure poisons only its own
//!   result slot (the first panic is re-raised to the caller of
//!   [`Pool::map`], preserving `std::thread::scope` semantics); the
//!   worker survives and the pool keeps serving.
//! - **Clean shutdown.** Dropping a non-global pool drains its queues
//!   and joins every worker.
//!
//! [`Pool::map`] is the order-preserving fan-out primitive the rest of
//! the workspace builds on: workers claim item indices from a shared
//! atomic counter, so results land in input order and are **byte-
//! identical to a sequential map regardless of worker count** — the
//! invariant every consistency suite in the workspace asserts.
//!
//! **Nested fan-outs run inline.** A map issued from inside a pool task
//! (a sharded query inside a batch, a parallel bulk load inside a
//! scatter) executes sequentially on the owning worker instead of
//! re-entering the pool. That rules out both deadlock (no worker ever
//! blocks waiting on pool work) and oversubscription (concurrency is
//! bounded by the worker count plus the callers), and costs nothing:
//! the outer fan-out already saturates the pool.
//!
//! ## Why this crate may use `unsafe` when no other crate does
//!
//! `Pool::map` runs closures that borrow the caller's stack on workers
//! that outlive the call — exactly the lifetime erasure `rayon` and
//! `crossbeam` hide behind their own `unsafe` internals, which the
//! offline build image cannot provide. The erasure here is a single
//! documented `unsafe` block in [`Pool::map`], sound because the caller
//! blocks until every helper task has finished before the borrowed job
//! can be freed. Every other crate in the workspace keeps
//! `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::{self, JoinHandle};

/// A queued unit of pool work: one erased "runner" of a [`Pool::map`]
/// call (not one item — a runner claims items until the job is dry).
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True while this thread is executing pool work (a worker running a
    /// task, or a `map` caller participating in its own job). Nested
    /// fan-outs consult it and run inline.
    static ENGAGED: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is already executing pool work, in which
/// case a nested fan-out must (and does) run inline rather than
/// re-entering the pool.
pub fn in_pool_work() -> bool {
    ENGAGED.with(Cell::get)
}

/// RAII guard marking the current thread as engaged in pool work.
struct EngageGuard {
    prev: bool,
}

fn engage() -> EngageGuard {
    EngageGuard {
        prev: ENGAGED.with(|f| f.replace(true)),
    }
}

impl Drop for EngageGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        ENGAGED.with(|f| f.set(prev));
    }
}

/// Mutex lock that recovers from poisoning: pool bookkeeping stays
/// usable even after a panicking task, which is what keeps one poisoned
/// job from wedging the whole executor.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The machine's available parallelism, queried **once** and cached for
/// the process lifetime (1 if it cannot be determined). Sizing decisions
/// all over the workspace (`clamp_threads`, the shell, the service) used
/// to re-query `available_parallelism` — a syscall — on every batch;
/// they now funnel through this cache.
pub fn default_workers() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Cumulative scheduler counters of a [`Pool`], cheap to sample.
///
/// These are *scheduler* observability, deliberately **not** part of
/// `ExecStats`: query counters are byte-identical between sequential and
/// parallel execution (the repo-wide invariant), while task and steal
/// counts inherently depend on scheduling. They surface through
/// `BatchStats` deltas and the service `/metrics` endpoint instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed by pool workers since the pool started.
    pub tasks: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub steals: u64,
}

/// Everything the workers share.
struct Shared {
    queues: Mutex<Queues>,
    /// Parked idle workers wait here; submissions notify it.
    work: Condvar,
    tasks: AtomicU64,
    steals: AtomicU64,
}

struct Queues {
    /// Overflow queue: submissions that found their round-robin deque
    /// busy, drained by whichever worker frees up first.
    injector: VecDeque<Task>,
    /// One deque per worker: owner pops the front, thieves the back.
    deques: Vec<VecDeque<Task>>,
    /// Round-robin placement cursor for submissions.
    rr: usize,
    shutdown: bool,
}

/// A persistent work-stealing thread pool.
///
/// One process-wide instance ([`Pool::global`]) serves every
/// `parallel_map` in the workspace; dedicated instances exist only in
/// tests, where controlled worker counts matter.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Starts a pool with `workers` long-lived worker threads (at least
    /// one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                injector: VecDeque::new(),
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                rr: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("tsq-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            handles,
        }
    }

    /// The process-wide pool, started lazily on first use and sized by
    /// [`default_workers`]. It lives for the process lifetime; idle
    /// workers are parked, not spinning.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_workers()))
    }

    /// Number of worker threads (cached at construction — callers sizing
    /// repeated batches read this instead of re-querying the OS).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Samples the cumulative scheduler counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
        }
    }

    /// Enqueues one erased task: round-robin onto a worker deque, or
    /// into the injector when that deque is busy, then wakes one parked
    /// worker.
    fn submit(&self, task: Task) {
        let mut q = lock(&self.shared.queues);
        let slot = q.rr % self.workers;
        q.rr = q.rr.wrapping_add(1);
        if q.deques[slot].is_empty() {
            q.deques[slot].push_back(task);
        } else {
            q.injector.push_back(task);
        }
        drop(q);
        self.shared.work.notify_one();
    }

    /// Maps `f` over `items` with up to `threads`-way concurrency,
    /// preserving input order exactly.
    ///
    /// Concurrency is the calling thread plus up to `threads - 1` pool
    /// workers (never more than [`Pool::workers`]); item indices are
    /// claimed one at a time from a shared counter, so mixed cheap and
    /// expensive items stay balanced and the output is byte-identical
    /// to `items.into_iter().map(f)` at every worker count. With
    /// `threads <= 1`, a single item, or when called from inside pool
    /// work (nested fan-out), this is a plain sequential map that
    /// touches no queues at all.
    ///
    /// # Panics
    /// If one or more closure invocations panic, the panic payload of
    /// the lowest panicking index is re-raised on the caller after every
    /// item has been settled — the pool itself keeps serving.
    pub fn map<T, R, F>(&self, threads: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 || in_pool_work() {
            return items.into_iter().map(f).collect();
        }
        // Helpers beyond the calling thread; >= 1 because threads >= 2
        // and workers >= 1.
        let helpers = threads.min(self.workers + 1) - 1;
        let job = Job {
            tasks: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            remaining: Mutex::new(helpers),
            done: Condvar::new(),
            f: &f,
        };
        // SAFETY (the one lifetime erasure in the workspace): `raw`
        // points at `job`, which lives on this stack frame, while the
        // submitted tasks are 'static as far as the type system knows.
        // They cannot outlive the *actual* job: every submitted task
        // decrements `job.remaining` (under its mutex) as its final
        // touch of the job, and this function does not proceed past the
        // wait loop below — let alone return or unwind — until
        // `remaining == 0`, i.e. until every submitted task has
        // finished. Nothing between the first submission and that wait
        // can unwind, and workers never drop queued tasks (shutdown
        // cannot race a live `&self` borrow of the pool), so every task
        // runs exactly once. Cross-thread access is sound because `Job`
        // is `Sync` here: `T: Send`, `R: Send`, `F: Sync`.
        let raw = RawJob {
            data: std::ptr::from_ref(&job).cast::<()>(),
            run: run_erased::<T, R, F>,
        };
        for _ in 0..helpers {
            self.submit(Box::new(move || raw.invoke()));
        }
        {
            // The caller participates in its own job; nested fan-outs
            // inside `f` run inline here too.
            let _engaged = engage();
            job.claim_loop();
        }
        let mut rem = lock(&job.remaining);
        while *rem > 0 {
            rem = wait(&job.done, rem);
        }
        drop(rem);
        // All helpers have signalled completion: the job is exclusively
        // ours again.
        let mut first_panic = None;
        let mut out = Vec::with_capacity(n);
        for slot in job.slots {
            match lock(&slot).take() {
                Some(Ok(r)) => out.push(r),
                Some(Err(payload)) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
                None => unreachable!("every claimed index stores a result"),
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.queues).shutdown = true;
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    // Workers are permanently "engaged": any fan-out reached from a task
    // they run is nested and must inline.
    ENGAGED.with(|f| f.set(true));
    loop {
        let task = {
            let mut q = lock(&shared.queues);
            loop {
                if let Some(t) = q.deques[me].pop_front() {
                    break t;
                }
                if let Some(t) = q.injector.pop_front() {
                    break t;
                }
                let n = q.deques.len();
                let stolen = (1..n).find_map(|step| q.deques[(me + step) % n].pop_back());
                if let Some(t) = stolen {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = wait(&shared.work, q);
            }
        };
        shared.tasks.fetch_add(1, Ordering::Relaxed);
        // Belt and braces: tasks already catch per-item panics; whatever
        // still unwinds must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

/// One in-flight [`Pool::map`] job: the items, their result slots, the
/// claim counter, and the helper-completion latch.
struct Job<'a, T, R, F> {
    tasks: Vec<Mutex<Option<T>>>,
    slots: Vec<Mutex<Option<thread::Result<R>>>>,
    next: AtomicUsize,
    /// Helpers still running (or queued); the caller blocks until zero.
    remaining: Mutex<usize>,
    done: Condvar,
    f: &'a F,
}

impl<T, R, F> Job<'_, T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Claims and runs items until the counter runs past the end. Every
    /// claimed index stores a result — `Ok` or the caught panic payload
    /// — so one poisoned item never strands the job.
    fn claim_loop(&self) {
        let n = self.tasks.len();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if let Some(item) = lock(&self.tasks[i]).take() {
                let r = catch_unwind(AssertUnwindSafe(|| (self.f)(item)));
                *lock(&self.slots[i]) = Some(r);
            }
        }
    }
}

impl<T, R, F> Job<'_, T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Helper-side entry: drain the claim loop, then signal completion.
    fn run_helper(&self) {
        self.claim_loop();
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            // Notify while holding the lock: the caller can only observe
            // zero (and free the job) after we release it, and past this
            // point the task never touches the job again.
            self.done.notify_all();
        }
    }
}

/// Type-erased handle to an in-flight [`Job`], the payload of a queued
/// helper task. Erasing through a data pointer plus a monomorphized shim
/// keeps the queued closure's type free of the job's generics (and their
/// lifetimes), which is what lets a non-`'static` job ride a `'static`
/// task queue.
#[derive(Clone, Copy)]
struct RawJob {
    data: *const (),
    run: RunFn,
}

/// The monomorphized job-runner shim type. The pointee's invariants are
/// the caller's responsibility — see the SAFETY comment in [`Pool::map`].
#[allow(unsafe_code)]
type RunFn = unsafe fn(*const ());

// SAFETY: a `RawJob` only ever points at a `Job` that is `Sync` (its
// fields are mutexes, atomics, and a `&F where F: Sync`; `Pool::map`
// constructs it under exactly those bounds), so handing the pointer to a
// worker thread is sound.
#[allow(unsafe_code)]
unsafe impl Send for RawJob {}

impl RawJob {
    fn invoke(self) {
        // SAFETY: `Pool::map` keeps the pointee alive until every
        // submitted task has run this to completion; see the SAFETY
        // comment there.
        #[allow(unsafe_code)]
        unsafe {
            (self.run)(self.data)
        }
    }
}

/// Recovers the concrete [`Job`] behind a [`RawJob`] and runs it.
///
/// # Safety
/// `ptr` must point at a live `Job<'_, T, R, F>` constructed with these
/// exact type parameters — guaranteed by [`Pool::map`], the only place
/// that pairs a data pointer with this shim.
#[allow(unsafe_code)]
unsafe fn run_erased<T, R, F>(ptr: *const ())
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let job = &*ptr.cast::<Job<'_, T, R, F>>();
    job.run_helper();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_is_order_preserving_at_every_width() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..257).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 3 + 1).collect();
        for threads in [0usize, 1, 2, 3, 7, 64] {
            assert_eq!(
                pool.map(threads, items.clone(), |i| i * 3 + 1),
                want,
                "threads = {threads}"
            );
        }
        assert!(pool.map::<usize, usize, _>(4, Vec::new(), |i| i).is_empty());
    }

    #[test]
    fn pool_counts_tasks() {
        let pool = Pool::new(2);
        assert_eq!(pool.stats(), PoolStats::default());
        let out = pool.map(3, (0..100).collect::<Vec<usize>>(), |i| i + 1);
        assert_eq!(out.len(), 100);
        let stats = pool.stats();
        assert!(
            stats.tasks >= 1,
            "helpers must run as pool tasks, got {stats:?}"
        );
    }

    #[test]
    fn panic_poisons_only_its_slot_and_pool_keeps_serving() {
        let pool = Pool::new(2);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.map(2, vec![1usize, 2, 3, 4, 5, 6], |i| {
                if i == 4 {
                    panic!("task {i} went boom");
                }
                i * 10
            })
        }));
        assert!(boom.is_err(), "the panic must reach the caller");
        // The same pool still answers, with full results.
        let out = pool.map(2, (0..50).collect::<Vec<usize>>(), |i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        // 2 workers, outer fan-out wider than the pool, each item fanning
        // out again: with per-call spawning this oversubscribes, with a
        // naive pool it deadlocks (workers waiting on work only workers
        // can run). The nested-inline rule makes it finish with exact
        // results.
        let pool = Pool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let got = pool.map(8, outer, |o| {
            let inner: Vec<usize> = (0..16).collect();
            pool.map(4, inner, |i| o * 100 + i).iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8)
            .map(|o| (0..16).map(|i| o * 100 + i).sum::<usize>())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..20 {
                        let items: Vec<usize> = (0..33).collect();
                        let out = pool.map(2, items, |i| i + round);
                        assert_eq!(out[32], 32 + round);
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn steals_happen_under_load() {
        // A 4-worker pool with many overlapping jobs: round-robin
        // placement plus uneven task lengths makes back-of-deque steals
        // statistically certain over this many submissions.
        let pool = Pool::new(4);
        for _ in 0..50 {
            let items: Vec<usize> = (0..64).collect();
            let _ = pool.map(5, items, |i| {
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                i * 2
            });
        }
        let stats = pool.stats();
        assert!(stats.tasks > 0);
        // Steals are scheduling-dependent; just ensure the counter is
        // wired (it must never exceed tasks).
        assert!(stats.steals <= stats.tasks);
    }

    #[test]
    fn drop_joins_cleanly_with_work_done() {
        for _ in 0..10 {
            let pool = Pool::new(3);
            let out = pool.map(4, (0..40).collect::<Vec<usize>>(), |i| i);
            assert_eq!(out.len(), 40);
            drop(pool);
        }
    }

    #[test]
    fn global_pool_is_lazy_and_sized_by_default_workers() {
        let pool = Pool::global();
        assert_eq!(pool.workers(), default_workers());
        let out = pool.map(4, (0..10).collect::<Vec<usize>>(), |i| i + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }
}
