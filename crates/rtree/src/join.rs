//! Spatial joins.
//!
//! The paper processes all-pairs queries "as a spatial join using the index"
//! where "we transform all objects used in the join predicate before we
//! compute the predicate" (Section 4). Two strategies are provided:
//!
//! - [`spatial_join`] / [`spatial_join_with`] — synchronized tree↔tree
//!   traversal pruning pairs of subtrees whose (transformed) MBRs are
//!   farther apart than the distance threshold;
//! - index-nested-loop joins are composed by callers from
//!   [`RStarTree::search_with`], which is what the paper's Table 1 methods
//!   (c) and (d) do.

use tsq_store::{StoreError, StoreResult};

use crate::node::{Entry, Node};
use crate::page::PageId;
use crate::paged::{PagedEntry, PagedTree};
use crate::rect::Rect;
use crate::stats::SearchStats;
use crate::tree::RStarTree;

/// Synchronized R-tree join with a caller-supplied **lower bound** on the
/// distance between the objects inside two stored rectangles.
///
/// `pair_bound(ra, rb)` receives *stored* rectangles from either tree and
/// must return a value that never exceeds the true distance between any
/// object in `ra` and any object in `rb` (after whatever transformation the
/// caller applies inside the closure). Pairs with `pair_bound > eps` are
/// pruned; every surviving leaf pair is passed to `out`.
///
/// This generalization matters for the paper's polar coordinate space,
/// where coordinate-wise rectangle distance is *not* a valid bound of the
/// complex-plane distance (angles wrap), and an annular-sector bound must
/// be used instead.
///
/// When both arguments are the *same* tree, identical entries (`a` is the
/// very same slot as `b`) are skipped, but each unordered pair is still
/// reported twice — once in each order — matching the paper's Table 1
/// accounting, where the transformed self-join answer of 12 pairs is listed
/// as `12 x 2 = 24`.
pub fn spatial_join_with<'a, T, U, B, OUT>(
    a: &'a RStarTree<T>,
    b: &'a RStarTree<U>,
    mut pair_bound: B,
    eps: f64,
    mut out: OUT,
) -> SearchStats
where
    B: FnMut(&Rect, &Rect) -> f64,
    OUT: FnMut(&'a Rect, &'a T, &'a Rect, &'a U),
{
    assert!(eps >= 0.0, "join distance must be non-negative");
    let mut stats = SearchStats::default();
    if a.is_empty() || b.is_empty() {
        return stats;
    }
    join_rec(&a.root, &b.root, &mut pair_bound, eps, &mut out, &mut stats);
    stats
}

/// Plain Euclidean-space join: invokes `out` for every pair of leaf entries
/// `(a, b)` whose transformed rectangles `ta(ra)`, `tb(rb)` lie within
/// Euclidean distance `eps` of each other (MBR-to-MBR distance; exact
/// point-level filtering is the caller's post-processing step, mirroring
/// Algorithm 2's structure).
pub fn spatial_join<'a, T, U, FA, FB, OUT>(
    a: &'a RStarTree<T>,
    b: &'a RStarTree<U>,
    mut ta: FA,
    mut tb: FB,
    eps: f64,
    out: OUT,
) -> SearchStats
where
    FA: FnMut(&Rect) -> Rect,
    FB: FnMut(&Rect) -> Rect,
    OUT: FnMut(&'a Rect, &'a T, &'a Rect, &'a U),
{
    spatial_join_with(
        a,
        b,
        move |ra, rb| ta(ra).rect_min_dist2(&tb(rb)).sqrt(),
        eps,
        out,
    )
}

fn join_rec<'a, T, U, B, OUT>(
    na: &'a Node<T>,
    nb: &'a Node<U>,
    pair_bound: &mut B,
    eps: f64,
    out: &mut OUT,
    stats: &mut SearchStats,
) where
    B: FnMut(&Rect, &Rect) -> f64,
    OUT: FnMut(&'a Rect, &'a T, &'a Rect, &'a U),
{
    stats.nodes_visited += 1;
    match (na.is_leaf(), nb.is_leaf()) {
        (true, true) => {
            stats.leaves_visited += 1;
            for ea in &na.entries {
                let (ra, ia) = match ea {
                    Entry::Leaf { rect, item } => (rect, item),
                    Entry::Node { .. } => unreachable!("node entry in leaf"),
                };
                for eb in &nb.entries {
                    let (rb, ib) = match eb {
                        Entry::Leaf { rect, item } => (rect, item),
                        Entry::Node { .. } => unreachable!("node entry in leaf"),
                    };
                    // Skip the literally-same entry in a self-join.
                    if std::ptr::eq(ra as *const Rect, rb as *const Rect) {
                        continue;
                    }
                    stats.entries_tested += 1;
                    if pair_bound(ra, rb) <= eps {
                        stats.candidates += 1;
                        out(ra, ia, rb, ib);
                    }
                }
            }
        }
        (false, true) => {
            for ea in &na.entries {
                if let Entry::Node { rect, child } = ea {
                    stats.entries_tested += 1;
                    if pair_bound(rect, &nb.mbr()) <= eps {
                        join_rec(child, nb, pair_bound, eps, out, stats);
                    }
                }
            }
        }
        (true, false) => {
            for eb in &nb.entries {
                if let Entry::Node { rect, child } = eb {
                    stats.entries_tested += 1;
                    if pair_bound(&na.mbr(), rect) <= eps {
                        join_rec(na, child, pair_bound, eps, out, stats);
                    }
                }
            }
        }
        (false, false) => {
            for ea in &na.entries {
                let (ra, ca) = match ea {
                    Entry::Node { rect, child } => (rect, child),
                    Entry::Leaf { .. } => unreachable!("leaf entry in internal node"),
                };
                for eb in &nb.entries {
                    let (rb, cb) = match eb {
                        Entry::Node { rect, child } => (rect, child),
                        Entry::Leaf { .. } => unreachable!("leaf entry in internal node"),
                    };
                    stats.entries_tested += 1;
                    if pair_bound(ra, rb) <= eps {
                        join_rec(ca, cb, pair_bound, eps, out, stats);
                    }
                }
            }
        }
    }
}

impl PagedTree {
    /// Paged twin of [`spatial_join_with`] for the self-join case (the
    /// only join shape the engine ever runs — every `JOIN` is a
    /// single-relation self-join). The traversal mirrors the in-memory
    /// synchronized join pair-visit for pair-visit; the in-memory
    /// version's "same slot" pointer check becomes an index check: the
    /// literally-same entry is the same `(page, entry index)`.
    ///
    /// # Errors
    /// Typed [`tsq_store::StoreError`]s when a page cannot be read or
    /// decodes as corrupt.
    ///
    /// # Panics
    /// If `eps` is negative, like the in-memory join.
    pub fn self_join_with<B, OUT>(
        &self,
        mut pair_bound: B,
        eps: f64,
        mut out: OUT,
    ) -> StoreResult<SearchStats>
    where
        B: FnMut(&Rect, &Rect) -> f64,
        OUT: FnMut(&Rect, u64, &Rect, u64),
    {
        assert!(eps >= 0.0, "join distance must be non-negative");
        let mut stats = SearchStats::default();
        if self.is_empty() {
            return Ok(stats);
        }
        self.join_pages(
            self.root(),
            self.root_level(),
            self.root(),
            self.root_level(),
            &mut pair_bound,
            eps,
            &mut out,
            &mut stats,
        )?;
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn join_pages<B, OUT>(
        &self,
        pa: PageId,
        la: u32,
        pb: PageId,
        lb: u32,
        pair_bound: &mut B,
        eps: f64,
        out: &mut OUT,
        stats: &mut SearchStats,
    ) -> StoreResult<()>
    where
        B: FnMut(&Rect, &Rect) -> f64,
        OUT: FnMut(&Rect, u64, &Rect, u64),
    {
        // Both pins live across the recursion; visiting the pair (p, p)
        // pins the same page twice, which the pool counts as one miss and
        // one hit (or two hits) — the honest I/O accounting.
        let na = self.fetch(pa, la, stats)?;
        let nb = self.fetch(pb, lb, stats)?;
        stats.nodes_visited += 1;
        match (na.is_leaf(), nb.is_leaf()) {
            (true, true) => {
                stats.leaves_visited += 1;
                for (ai, ea) in na.entries.iter().enumerate() {
                    let (ra, ia) = match ea {
                        PagedEntry::Leaf { rect, item } => (rect, *item),
                        PagedEntry::Child { .. } => unreachable!("child entry in leaf"),
                    };
                    for (bi, eb) in nb.entries.iter().enumerate() {
                        let (rb, ib) = match eb {
                            PagedEntry::Leaf { rect, item } => (rect, *item),
                            PagedEntry::Child { .. } => unreachable!("child entry in leaf"),
                        };
                        // Skip the literally-same entry in the self-join.
                        if pa == pb && ai == bi {
                            continue;
                        }
                        stats.entries_tested += 1;
                        if pair_bound(ra, rb) <= eps {
                            stats.candidates += 1;
                            out(ra, ia, rb, ib);
                        }
                    }
                }
            }
            (false, true) => {
                let mbr_b = node_mbr(&nb)?;
                for ea in &na.entries {
                    if let PagedEntry::Child { rect, page } = ea {
                        stats.entries_tested += 1;
                        if pair_bound(rect, &mbr_b) <= eps {
                            self.join_pages(*page, la - 1, pb, lb, pair_bound, eps, out, stats)?;
                        }
                    }
                }
            }
            (true, false) => {
                let mbr_a = node_mbr(&na)?;
                for eb in &nb.entries {
                    if let PagedEntry::Child { rect, page } = eb {
                        stats.entries_tested += 1;
                        if pair_bound(&mbr_a, rect) <= eps {
                            self.join_pages(pa, la, *page, lb - 1, pair_bound, eps, out, stats)?;
                        }
                    }
                }
            }
            (false, false) => {
                for ea in &na.entries {
                    let (ra, ca) = match ea {
                        PagedEntry::Child { rect, page } => (rect, *page),
                        PagedEntry::Leaf { .. } => unreachable!("leaf entry in internal node"),
                    };
                    for eb in &nb.entries {
                        let (rb, cb) = match eb {
                            PagedEntry::Child { rect, page } => (rect, *page),
                            PagedEntry::Leaf { .. } => unreachable!("leaf entry in internal node"),
                        };
                        stats.entries_tested += 1;
                        if pair_bound(ra, rb) <= eps {
                            self.join_pages(ca, la - 1, cb, lb - 1, pair_bound, eps, out, stats)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn node_mbr(node: &crate::paged::PagedNode) -> StoreResult<Rect> {
    node.mbr()
        .ok_or_else(|| StoreError::corrupt("empty node in page file"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn tree_from(points: &[[f64; 2]]) -> RStarTree<usize> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(5));
        for (i, p) in points.iter().enumerate() {
            t.insert_point(p, i);
        }
        t
    }

    fn id(r: &Rect) -> Rect {
        r.clone()
    }

    #[test]
    fn join_finds_close_pairs() {
        let a = tree_from(&[[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]]);
        let b = tree_from(&[[0.5, 0.0], [15.0, 15.0]]);
        let mut pairs = Vec::new();
        spatial_join(&a, &b, id, id, 1.0, |_, &x, _, &y| pairs.push((x, y)));
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn join_matches_brute_force() {
        // Deterministic pseudo-random point clouds.
        let pts_a: Vec<[f64; 2]> = (0..80)
            .map(|i| [((i * 37) % 101) as f64, ((i * 53) % 97) as f64])
            .collect();
        let pts_b: Vec<[f64; 2]> = (0..60)
            .map(|i| [((i * 71) % 103) as f64, ((i * 29) % 89) as f64])
            .collect();
        let a = tree_from(&pts_a);
        let b = tree_from(&pts_b);
        let eps = 7.5;
        let mut got = Vec::new();
        spatial_join(&a, &b, id, id, eps, |_, &x, _, &y| got.push((x, y)));
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, pa) in pts_a.iter().enumerate() {
            for (j, pb) in pts_b.iter().enumerate() {
                let d2 = (pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2);
                if d2 <= eps * eps {
                    want.push((i, j));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn self_join_reports_each_pair_twice() {
        let pts: Vec<[f64; 2]> = vec![[0.0, 0.0], [0.5, 0.0], [100.0, 100.0]];
        let t = tree_from(&pts);
        let mut pairs = Vec::new();
        spatial_join(&t, &t, id, id, 1.0, |_, &x, _, &y| pairs.push((x, y)));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn transformed_join() {
        // Side b is reflected through the origin before matching: pairs are
        // (p, q) with |p + q| <= eps — the paper's T_rev hedging query.
        let a = tree_from(&[[1.0, 2.0], [5.0, 5.0]]);
        let b = tree_from(&[[-1.0, -2.0], [4.0, 4.0]]);
        let mut pairs = Vec::new();
        spatial_join(
            &a,
            &b,
            id,
            |r| r.affine(&[-1.0, -1.0], &[0.0, 0.0]),
            0.1,
            |_, &x, _, &y| pairs.push((x, y)),
        );
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn join_with_empty_tree() {
        let a = tree_from(&[[0.0, 0.0]]);
        let b: RStarTree<usize> = RStarTree::default();
        let mut called = false;
        spatial_join(&a, &b, id, id, 10.0, |_, _, _, _| called = true);
        assert!(!called);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eps_panics() {
        let a = tree_from(&[[0.0, 0.0]]);
        spatial_join(&a, &a, id, id, -1.0, |_, _, _, _| {});
    }

    #[test]
    fn join_prunes_subtrees() {
        // Two distant clusters: the cross-cluster subtree pairs must be
        // pruned, so entry tests stay far below the n*m worst case.
        let pts_a: Vec<[f64; 2]> = (0..100)
            .map(|i| [i as f64 % 10.0, (i / 10) as f64])
            .collect();
        let pts_b: Vec<[f64; 2]> = pts_a
            .iter()
            .map(|p| [p[0] + 1000.0, p[1] + 1000.0])
            .collect();
        let mut both = pts_a.clone();
        both.extend_from_slice(&pts_b);
        let t = tree_from(&both);
        let stats = spatial_join(&t, &t, id, id, 2.0, |_, _, _, _| {});
        assert!(
            stats.entries_tested < 200 * 200 / 4,
            "join should prune: {} tests",
            stats.entries_tested
        );
    }

    #[test]
    fn custom_bound_join() {
        // A bound of zero disables pruning: every cross pair is reported.
        let a = tree_from(&[[0.0, 0.0], [5.0, 5.0]]);
        let b = tree_from(&[[100.0, 100.0]]);
        let mut n = 0;
        spatial_join_with(&a, &b, |_, _| 0.0, 0.5, |_, _, _, _| n += 1);
        assert_eq!(n, 2);
    }
}
