//! Best-first nearest-neighbor search (Roussopoulos–Kelley–Vincent style
//! pruning generalized to the incremental best-first algorithm).
//!
//! Distances are pluggable: the caller supplies a *lower bound* for node
//! MBRs and an *exact* distance for leaf entries. For plain Euclidean KNN
//! these are `MINDIST` and the point distance; for the paper's transformed
//! queries (`find the k series most similar to q under T`), `tsq-core`
//! passes bounds computed on transformed rectangles, which keeps the search
//! correct with no false dismissals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tsq_store::StoreResult;

use crate::node::{Entry, Node};
use crate::page::PageId;
use crate::paged::{PagedEntry, PagedTree};
use crate::rect::Rect;
use crate::stats::SearchStats;
use crate::tree::RStarTree;

/// One nearest-neighbor result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<'a, T> {
    /// Exact distance reported by the caller's distance function.
    pub distance: f64,
    /// Stored bounding rectangle of the item.
    pub rect: &'a Rect,
    /// The item.
    pub item: &'a T,
}

enum HeapPayload<'a, T> {
    Node(&'a Node<T>),
    Item(&'a Rect, &'a T),
}

struct HeapEntry<'a, T> {
    dist: f64,
    payload: HeapPayload<'a, T>,
}

impl<T> PartialEq for HeapEntry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for HeapEntry<'_, T> {}
impl<T> PartialOrd for HeapEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need smallest distance first.
        other.dist.total_cmp(&self.dist)
    }
}

impl<T> RStarTree<T> {
    /// Returns the `k` items minimizing `exact_dist`, using `bound_dist` as
    /// an admissible (never over-estimating) lower bound on node MBRs.
    ///
    /// Results are sorted by ascending distance. If the tree holds fewer
    /// than `k` items, all of them are returned. Items tied in distance at
    /// the `k`-th boundary are kept in traversal order; use
    /// [`RStarTree::nearest_with_tie`] when the selection must be
    /// deterministic.
    pub fn nearest_with<'a, B, E>(
        &'a self,
        k: usize,
        bound_dist: B,
        exact_dist: E,
    ) -> (Vec<Neighbor<'a, T>>, SearchStats)
    where
        B: FnMut(&Rect) -> f64,
        E: FnMut(&Rect, &T) -> f64,
    {
        // A constant tie key makes the keyed comparator degenerate to the
        // distance-only comparator, so this wrapper changes nothing.
        self.nearest_with_tie(k, bound_dist, exact_dist, |_| 0)
    }

    /// [`RStarTree::nearest_with`] with deterministic tie-breaking: among
    /// items at equal exact distance, the ones with the smallest `tie_key`
    /// win the boundary slots, and equal-distance results are ordered by
    /// ascending key.
    ///
    /// The best-first loop only prunes when a heap distance is *strictly*
    /// greater than the current `k`-th distance, so every item tied at the
    /// boundary is examined — keying the insertion is enough to make the
    /// retained set exactly the `k` smallest by `(distance, key)`. Visit
    /// counters are identical to the unkeyed search.
    pub fn nearest_with_tie<'a, B, E, K>(
        &'a self,
        k: usize,
        mut bound_dist: B,
        mut exact_dist: E,
        mut tie_key: K,
    ) -> (Vec<Neighbor<'a, T>>, SearchStats)
    where
        B: FnMut(&Rect) -> f64,
        E: FnMut(&Rect, &T) -> f64,
        K: FnMut(&T) -> u64,
    {
        let mut stats = SearchStats::default();
        let mut results: Vec<(u64, Neighbor<'a, T>)> = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return (Vec::new(), stats);
        }
        let mut heap: BinaryHeap<HeapEntry<'a, T>> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            payload: HeapPayload::Node(&self.root),
        });
        while let Some(HeapEntry { dist, payload }) = heap.pop() {
            if results.len() == k && dist > results[k - 1].1.distance {
                break; // nothing on the heap can beat the current k-th
            }
            match payload {
                HeapPayload::Node(node) => {
                    stats.nodes_visited += 1;
                    if node.is_leaf() {
                        stats.leaves_visited += 1;
                    }
                    for entry in &node.entries {
                        stats.entries_tested += 1;
                        match entry {
                            Entry::Leaf { rect, item } => {
                                let d = exact_dist(rect, item);
                                heap.push(HeapEntry {
                                    dist: d,
                                    payload: HeapPayload::Item(rect, item),
                                });
                            }
                            Entry::Node { rect, child } => {
                                let d = bound_dist(rect);
                                heap.push(HeapEntry {
                                    dist: d,
                                    payload: HeapPayload::Node(child),
                                });
                            }
                        }
                    }
                }
                HeapPayload::Item(rect, item) => {
                    stats.candidates += 1;
                    let key = tie_key(item);
                    insert_sorted(
                        &mut results,
                        key,
                        Neighbor {
                            distance: dist,
                            rect,
                            item,
                        },
                        k,
                    );
                    // When the k-th distance is settled, the loop's break
                    // condition prunes the remaining heap.
                }
            }
        }
        (results.into_iter().map(|(_, n)| n).collect(), stats)
    }

    /// Euclidean k-nearest-neighbors of a query point, using `MINDIST`
    /// pruning on MBRs.
    pub fn nearest_to_point<'a>(
        &'a self,
        k: usize,
        point: &[f64],
    ) -> (Vec<Neighbor<'a, T>>, SearchStats) {
        self.nearest_with(
            k,
            |rect| rect.min_dist2(point).sqrt(),
            |rect, _| rect.min_dist2(point).sqrt(),
        )
    }
}

fn insert_sorted<'a, T>(
    results: &mut Vec<(u64, Neighbor<'a, T>)>,
    key: u64,
    n: Neighbor<'a, T>,
    k: usize,
) {
    let pos = results
        .binary_search_by(|(pk, p)| p.distance.total_cmp(&n.distance).then(pk.cmp(&key)))
        .unwrap_or_else(|p| p);
    results.insert(pos, (key, n));
    if results.len() > k {
        results.pop();
    }
}

/// One nearest-neighbor result from a paged tree. Owns its rectangle —
/// the page it came from may be evicted before the caller looks.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedNeighbor {
    /// Exact distance reported by the caller's distance function.
    pub distance: f64,
    /// Stored bounding rectangle of the item.
    pub rect: Rect,
    /// The stored payload word.
    pub item: u64,
}

enum PagedHeapPayload {
    Node(PageId, u32),
    Item(Rect, u64),
}

struct PagedHeapEntry {
    dist: f64,
    payload: PagedHeapPayload,
}

impl PartialEq for PagedHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for PagedHeapEntry {}
impl PartialOrd for PagedHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PagedHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need smallest distance first.
        other.dist.total_cmp(&self.dist)
    }
}

impl PagedTree {
    /// Paged twin of [`RStarTree::nearest_with`]: the identical best-first
    /// search — same heap discipline, same tie behavior, same counters —
    /// with node fetches going through the buffer pool.
    ///
    /// # Errors
    /// Typed [`tsq_store::StoreError`]s when a page cannot be read or
    /// decodes as corrupt.
    pub fn nearest_with<B, E>(
        &self,
        k: usize,
        bound_dist: B,
        exact_dist: E,
    ) -> StoreResult<(Vec<OwnedNeighbor>, SearchStats)>
    where
        B: FnMut(&Rect) -> f64,
        E: FnMut(&Rect, u64) -> f64,
    {
        self.nearest_with_tie(k, bound_dist, exact_dist, |_| 0)
    }

    /// Paged twin of [`RStarTree::nearest_with_tie`]: deterministic
    /// boundary tie-breaking by ascending `tie_key`, identical counters.
    ///
    /// # Errors
    /// Same as [`PagedTree::nearest_with`].
    pub fn nearest_with_tie<B, E, K>(
        &self,
        k: usize,
        mut bound_dist: B,
        mut exact_dist: E,
        mut tie_key: K,
    ) -> StoreResult<(Vec<OwnedNeighbor>, SearchStats)>
    where
        B: FnMut(&Rect) -> f64,
        E: FnMut(&Rect, u64) -> f64,
        K: FnMut(u64) -> u64,
    {
        let mut stats = SearchStats::default();
        let mut results: Vec<(u64, OwnedNeighbor)> = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return Ok((Vec::new(), stats));
        }
        let mut heap: BinaryHeap<PagedHeapEntry> = BinaryHeap::new();
        heap.push(PagedHeapEntry {
            dist: 0.0,
            payload: PagedHeapPayload::Node(self.root(), self.root_level()),
        });
        while let Some(PagedHeapEntry { dist, payload }) = heap.pop() {
            if results.len() == k && dist > results[k - 1].1.distance {
                break; // nothing on the heap can beat the current k-th
            }
            match payload {
                PagedHeapPayload::Node(id, level) => {
                    let node = self.fetch(id, level, &mut stats)?;
                    stats.nodes_visited += 1;
                    if node.is_leaf() {
                        stats.leaves_visited += 1;
                    }
                    for entry in &node.entries {
                        stats.entries_tested += 1;
                        match entry {
                            PagedEntry::Leaf { rect, item } => {
                                let d = exact_dist(rect, *item);
                                heap.push(PagedHeapEntry {
                                    dist: d,
                                    payload: PagedHeapPayload::Item(rect.clone(), *item),
                                });
                            }
                            PagedEntry::Child { rect, page } => {
                                let d = bound_dist(rect);
                                heap.push(PagedHeapEntry {
                                    dist: d,
                                    payload: PagedHeapPayload::Node(*page, level - 1),
                                });
                            }
                        }
                    }
                }
                PagedHeapPayload::Item(rect, item) => {
                    stats.candidates += 1;
                    let key = tie_key(item);
                    insert_sorted_owned(
                        &mut results,
                        key,
                        OwnedNeighbor {
                            distance: dist,
                            rect,
                            item,
                        },
                        k,
                    );
                }
            }
        }
        Ok((results.into_iter().map(|(_, n)| n).collect(), stats))
    }

    /// Paged twin of [`RStarTree::nearest_to_point`].
    ///
    /// # Errors
    /// Same as [`PagedTree::nearest_with`].
    pub fn nearest_to_point(
        &self,
        k: usize,
        point: &[f64],
    ) -> StoreResult<(Vec<OwnedNeighbor>, SearchStats)> {
        self.nearest_with(
            k,
            |rect| rect.min_dist2(point).sqrt(),
            |rect, _| rect.min_dist2(point).sqrt(),
        )
    }
}

fn insert_sorted_owned(
    results: &mut Vec<(u64, OwnedNeighbor)>,
    key: u64,
    n: OwnedNeighbor,
    k: usize,
) {
    let pos = results
        .binary_search_by(|(pk, p)| p.distance.total_cmp(&n.distance).then(pk.cmp(&key)))
        .unwrap_or_else(|p| p);
    results.insert(pos, (key, n));
    if results.len() > k {
        results.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn grid_tree(n: usize) -> RStarTree<(usize, usize)> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(8));
        for i in 0..n {
            for j in 0..n {
                t.insert_point(&[i as f64, j as f64], (i, j));
            }
        }
        t
    }

    /// Brute-force reference.
    fn brute_knn(n: usize, k: usize, q: [f64; 2]) -> Vec<f64> {
        let mut d: Vec<f64> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| {
                let dx = i as f64 - q[0];
                let dy = j as f64 - q[1];
                (dx * dx + dy * dy).sqrt()
            })
            .collect();
        d.sort_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn knn_matches_brute_force() {
        let t = grid_tree(15);
        for q in [[0.0, 0.0], [7.3, 7.9], [20.0, -3.0], [14.0, 14.0]] {
            for k in [1usize, 5, 17] {
                let (got, _) = t.nearest_to_point(k, &q);
                let want = brute_knn(15, k, q);
                assert_eq!(got.len(), k);
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.distance - w).abs() < 1e-9,
                        "q={q:?} k={k}: {} vs {w}",
                        g.distance
                    );
                }
            }
        }
    }

    #[test]
    fn knn_prunes() {
        let t = grid_tree(30); // 900 points
        let (_, stats) = t.nearest_to_point(3, &[15.0, 15.0]);
        assert!(
            stats.nodes_visited < 40,
            "best-first should visit few nodes, visited {}",
            stats.nodes_visited
        );
    }

    #[test]
    fn k_larger_than_tree() {
        let t = grid_tree(3);
        let (got, _) = t.nearest_to_point(100, &[0.0, 0.0]);
        assert_eq!(got.len(), 9);
        // Sorted ascending.
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let t = grid_tree(3);
        assert!(t.nearest_to_point(0, &[0.0, 0.0]).0.is_empty());
        let empty: RStarTree<u8> = RStarTree::default();
        assert!(empty.nearest_to_point(5, &[0.0]).0.is_empty());
    }

    #[test]
    fn transformed_knn_via_custom_metric() {
        // Nearest under T(x) = -x (the paper's reversing transformation):
        // the item minimizing |T(p) - q| differs from the plain nearest.
        let t = grid_tree(10);
        let q = [-3.0, -7.0];
        let (got, _) = t.nearest_with(
            1,
            |rect| rect.affine(&[-1.0, -1.0], &[0.0, 0.0]).min_dist2(&q).sqrt(),
            |rect, _| {
                let c = rect.center();
                let dx = -c[0] - q[0];
                let dy = -c[1] - q[1];
                (dx * dx + dy * dy).sqrt()
            },
        );
        assert_eq!(*got[0].item, (3, 7));
        assert!(got[0].distance < 1e-12);
    }

    #[test]
    fn boundary_ties_break_by_key() {
        // Eight points at identical distance from the query; k = 3 must
        // keep exactly the three smallest payloads regardless of the
        // insertion (and therefore traversal) order.
        for perm in 0..8u64 {
            let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
            for i in 0..8u64 {
                let id = (i + perm) % 8;
                let angle = id as f64 * std::f64::consts::FRAC_PI_4;
                t.insert_point(&[angle.cos(), angle.sin()], id);
            }
            let (got, _) = t.nearest_with_tie(
                3,
                |rect| rect.min_dist2(&[0.0, 0.0]).sqrt(),
                |_, _| 1.0, // all items exactly tied
                |&id| id,
            );
            let ids: Vec<u64> = got.iter().map(|n| *n.item).collect();
            assert_eq!(ids, vec![0, 1, 2], "perm {perm}");
        }
    }

    #[test]
    fn ties_all_returned() {
        // Four symmetric points around the query at identical distance.
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        t.insert_point(&[1.0, 0.0], 0);
        t.insert_point(&[-1.0, 0.0], 1);
        t.insert_point(&[0.0, 1.0], 2);
        t.insert_point(&[0.0, -1.0], 3);
        let (got, _) = t.nearest_to_point(4, &[0.0, 0.0]);
        assert_eq!(got.len(), 4);
        for n in &got {
            assert!((n.distance - 1.0).abs() < 1e-12);
        }
    }
}
