//! Axis-aligned rectangles of dynamic dimensionality.
//!
//! The index stores feature points in a `2k+2`-dimensional space whose
//! dimensionality is chosen at runtime (it depends on the number of Fourier
//! coefficients kept), so rectangles carry their bounds in boxed slices
//! rather than const-generic arrays.

use std::fmt;

/// An axis-aligned (hyper-)rectangle: per-dimension closed intervals
/// `[lo_i, hi_i]`.
///
/// Degenerate rectangles (points, `lo == hi`) are fully supported — leaf
/// entries of the similarity index are points.
///
/// Both bound arrays live in **one** contiguous allocation (`lo` in the
/// first half, `hi` in the second): rectangles are constructed in bulk on
/// every hot path — trail extraction, on-the-fly transformed traversals,
/// snapshot restores — and one allocation per rectangle instead of two
/// measurably cuts both build and restore latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    bounds: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from per-dimension bounds.
    ///
    /// # Panics
    /// Panics if lengths differ, if any `lo_i > hi_i`, or if any bound is
    /// not finite.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound arrays must have equal length");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(
                l.is_finite() && h.is_finite(),
                "non-finite bound in dim {i}"
            );
            assert!(l <= h, "inverted bounds in dim {i}: {l} > {h}");
        }
        let mut bounds = lo;
        bounds.extend_from_slice(&hi);
        Self {
            bounds: bounds.into_boxed_slice(),
        }
    }

    /// Crate-internal constructor from an already-validated contiguous
    /// bounds buffer (`lo` in the first half, `hi` in the second) — the
    /// snapshot decoder's hot path, which validates while parsing and
    /// must not pay for a second validation pass or extra copies.
    pub(crate) fn from_validated_bounds(bounds: Vec<f64>) -> Self {
        debug_assert!(bounds.len() % 2 == 0);
        debug_assert!({
            let d = bounds.len() / 2;
            (0..d).all(|i| bounds[i].is_finite() && bounds[i] <= bounds[d + i])
        });
        Self {
            bounds: bounds.into_boxed_slice(),
        }
    }

    /// Creates a degenerate rectangle containing a single point.
    pub fn from_point(p: &[f64]) -> Self {
        let mut bounds = Vec::with_capacity(2 * p.len());
        bounds.extend_from_slice(p);
        bounds.extend_from_slice(p);
        Self {
            bounds: bounds.into_boxed_slice(),
        }
    }

    /// Creates the rectangle `[center_i - r, center_i + r]` in every
    /// dimension (the rectangular-space search rectangle of Section 3.1).
    pub fn ball_mbr(center: &[f64], r: f64) -> Self {
        assert!(r >= 0.0, "radius must be non-negative");
        let mut bounds = Vec::with_capacity(2 * center.len());
        bounds.extend(center.iter().map(|&c| c - r));
        bounds.extend(center.iter().map(|&c| c + r));
        Self {
            bounds: bounds.into_boxed_slice(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.bounds.len() / 2
    }

    /// Lower bounds.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.bounds[..self.bounds.len() / 2]
    }

    /// Upper bounds.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.bounds[self.bounds.len() / 2..]
    }

    /// True when the rectangle is a point.
    pub fn is_point(&self) -> bool {
        self.lo().iter().zip(self.hi()).all(|(l, h)| l == h)
    }

    /// The center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo()
            .iter()
            .zip(self.hi())
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Volume (product of extents). Zero for degenerate rectangles.
    pub fn area(&self) -> f64 {
        self.lo()
            .iter()
            .zip(self.hi())
            .map(|(&l, &h)| h - l)
            .product()
    }

    /// Margin (sum of extents) — the R\*-tree split heuristic minimizes the
    /// sum of margins over candidate distributions.
    pub fn margin(&self) -> f64 {
        self.lo().iter().zip(self.hi()).map(|(&l, &h)| h - l).sum()
    }

    /// True when `self` and `other` intersect (closed intervals: touching
    /// counts).
    ///
    /// # Panics
    /// Debug-asserts equal dimensionality.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo().iter().zip(other.hi()).all(|(&l, &h)| l <= h)
            && other.lo().iter().zip(self.hi()).all(|(&l, &h)| l <= h)
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo().iter().zip(other.lo()).all(|(&a, &b)| a <= b)
            && self.hi().iter().zip(other.hi()).all(|(&a, &b)| a >= b)
    }

    /// True when the point lies inside `self` (boundary included).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo().iter().zip(p).all(|(&l, &v)| l <= v)
            && self.hi().iter().zip(p).all(|(&h, &v)| v <= h)
    }

    /// Volume of the intersection; zero when disjoint.
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let (slo, shi) = (self.lo(), self.hi());
        let (olo, ohi) = (other.lo(), other.hi());
        let mut area = 1.0;
        for i in 0..self.dims() {
            let l = slo[i].max(olo[i]);
            let h = shi[i].min(ohi[i]);
            if l >= h {
                return 0.0;
            }
            area *= h - l;
        }
        area
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        let mut out = self.clone();
        out.union_assign(other);
        out
    }

    /// Grows `self` in place to cover `other`.
    pub fn union_assign(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        let d = self.dims();
        for i in 0..d {
            if other.bounds[i] < self.bounds[i] {
                self.bounds[i] = other.bounds[i];
            }
            if other.bounds[d + i] > self.bounds[d + i] {
                self.bounds[d + i] = other.bounds[d + i];
            }
        }
    }

    /// Area increase required for `self` to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared minimum Euclidean distance from a point to this rectangle
    /// (`MINDIST` of Roussopoulos et al. 1995). Zero when the point is
    /// inside.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(self.dims(), p.len());
        let (lo, hi) = (self.lo(), self.hi());
        let mut acc = 0.0;
        for (i, &v) in p.iter().enumerate() {
            let d = if v < lo[i] {
                lo[i] - v
            } else if v > hi[i] {
                v - hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared `MINMAXDIST` (Roussopoulos et al. 1995): the smallest upper
    /// bound on the distance from `p` to the nearest object *guaranteed* to
    /// lie inside this MBR. Every face of an MBR touches at least one object,
    /// so for each axis `i` we can clamp to the nearer face along `i` and the
    /// farther corner everywhere else; the minimum over axes is MINMAXDIST.
    ///
    /// Returns `f64::INFINITY` for zero-dimensional rectangles.
    pub fn min_max_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(self.dims(), p.len());
        let d = self.dims();
        if d == 0 {
            return f64::INFINITY;
        }
        // rm_i: nearer face coordinate; rM_i: farther face coordinate.
        let (lo, hi) = (self.lo(), self.hi());
        let mut far_total = 0.0;
        let mut near_sq = vec![0.0; d];
        let mut far_sq = vec![0.0; d];
        for i in 0..d {
            let mid = 0.5 * (lo[i] + hi[i]);
            let rm = if p[i] <= mid { lo[i] } else { hi[i] };
            let rmx = if p[i] >= mid { lo[i] } else { hi[i] };
            near_sq[i] = (p[i] - rm) * (p[i] - rm);
            far_sq[i] = (p[i] - rmx) * (p[i] - rmx);
            far_total += far_sq[i];
        }
        let mut best = f64::INFINITY;
        for i in 0..d {
            let cand = far_total - far_sq[i] + near_sq[i];
            if cand < best {
                best = cand;
            }
        }
        best
    }

    /// Squared minimum distance between two rectangles (zero if they
    /// intersect). Used by spatial joins for distance predicates.
    pub fn rect_min_dist2(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let (slo, shi) = (self.lo(), self.hi());
        let (olo, ohi) = (other.lo(), other.hi());
        let mut acc = 0.0;
        for i in 0..self.dims() {
            let d = if shi[i] < olo[i] {
                olo[i] - shi[i]
            } else if ohi[i] < slo[i] {
                slo[i] - ohi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Returns a copy grown by `pad >= 0` in every direction.
    pub fn expanded(&self, pad: f64) -> Rect {
        assert!(pad >= 0.0, "padding must be non-negative");
        let d = self.dims();
        let mut bounds = self.bounds.clone();
        for i in 0..d {
            bounds[i] -= pad;
            bounds[d + i] += pad;
        }
        Rect { bounds }
    }

    /// Applies a per-dimension affine map `x -> a_i * x + b_i`, swapping
    /// bounds where `a_i < 0` so the result is a valid rectangle. This is
    /// precisely how a *safe* transformation (Definition 1 / Theorem 1 of the
    /// paper) acts on an MBR, and the primitive behind Algorithm 1's
    /// on-the-fly index transformation.
    ///
    /// # Panics
    /// Panics if `a`/`b` lengths differ from the dimensionality.
    pub fn affine(&self, a: &[f64], b: &[f64]) -> Rect {
        let d = self.dims();
        assert_eq!(a.len(), d, "affine scale length mismatch");
        assert_eq!(b.len(), d, "affine shift length mismatch");
        let mut bounds = vec![0.0; 2 * d];
        for i in 0..d {
            let x = a[i] * self.bounds[i] + b[i];
            let y = a[i] * self.bounds[d + i] + b[i];
            let (l, h) = if x <= y { (x, y) } else { (y, x) };
            bounds[i] = l;
            bounds[d + i] = h;
        }
        Rect {
            bounds: bounds.into_boxed_slice(),
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let (lo, hi) = (self.lo(), self.hi());
        for i in 0..self.dims() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..{}", lo[i], hi[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn basics() {
        let r = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(r.center(), vec![1.0, 1.5]);
        assert!(!r.is_point());
        assert!(Rect::from_point(&[1.0, 1.0]).is_point());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = r2([1.0, 0.0], [0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_bounds_panic() {
        let _ = Rect::new(vec![f64::NAN], vec![1.0]);
    }

    #[test]
    fn intersection_logic() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 3.0]);
        let c = r2([2.0, 2.0], [4.0, 4.0]); // touches a at a corner
        let d = r2([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(a.intersects(&c), "touching rectangles intersect");
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([2.0, 2.0], [3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, r2([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        let mut c = a.clone();
        c.union_assign(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn containment() {
        let a = r2([0.0, 0.0], [4.0, 4.0]);
        let b = r2([1.0, 1.0], [2.0, 2.0]);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_point(&[0.0, 4.0]));
        assert!(!a.contains_point(&[-0.1, 2.0]));
    }

    #[test]
    fn mindist_cases() {
        let r = r2([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(r.min_dist2(&[2.0, 2.0]), 0.0); // inside
        assert_eq!(r.min_dist2(&[0.0, 2.0]), 1.0); // left of
        assert_eq!(r.min_dist2(&[0.0, 0.0]), 2.0); // corner
        assert_eq!(r.min_dist2(&[4.0, 5.0]), 1.0 + 4.0);
    }

    #[test]
    fn minmaxdist_upper_bounds_some_object() {
        // MINDIST <= MINMAXDIST always.
        let r = r2([1.0, 1.0], [3.0, 5.0]);
        for p in [[0.0, 0.0], [2.0, 2.0], [10.0, -3.0], [1.5, 6.0]] {
            assert!(r.min_dist2(&p) <= r.min_max_dist2(&p) + 1e-12);
        }
    }

    #[test]
    fn minmaxdist_point_rect() {
        // For a degenerate (point) MBR, MINMAXDIST == MINDIST == distance.
        let r = Rect::from_point(&[1.0, 2.0]);
        let p = [4.0, 6.0];
        assert!((r.min_max_dist2(&p) - 25.0).abs() < 1e-12);
        assert!((r.min_dist2(&p) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rect_to_rect_distance() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([3.0, 1.0], [4.0, 2.0]);
        assert_eq!(a.rect_min_dist2(&b), 4.0);
        assert_eq!(a.rect_min_dist2(&a), 0.0);
    }

    #[test]
    fn ball_mbr_contains_ball_boundary() {
        let q = [1.0, -2.0, 0.5];
        let r = Rect::ball_mbr(&q, 2.0);
        assert!(r.contains_point(&[3.0, -2.0, 0.5]));
        assert!(r.contains_point(&[1.0, 0.0, 0.5]));
        assert!(!r.contains_point(&[3.1, -2.0, 0.5]));
    }

    #[test]
    fn affine_with_negative_scale_swaps_bounds() {
        // The paper drops GK95's positive-scale restriction; reversing a
        // series multiplies by -1, which must still yield a rectangle.
        let r = r2([1.0, 2.0], [3.0, 5.0]);
        let t = r.affine(&[-1.0, 2.0], &[0.0, 1.0]);
        assert_eq!(t, r2([-3.0, 5.0], [-1.0, 11.0]));
    }

    #[test]
    fn affine_identity() {
        let r = r2([1.0, 2.0], [3.0, 5.0]);
        assert_eq!(r.affine(&[1.0, 1.0], &[0.0, 0.0]), r);
    }

    #[test]
    fn affine_safety_preserves_membership() {
        // Definition 1: interior stays interior, exterior stays exterior.
        let r = r2([-5.0, -5.0], [5.0, 5.0]);
        let inside = [-2.0, 2.0];
        let outside = [7.0, 0.0];
        let a = [2.0, -3.0];
        let b = [1.0, 4.0];
        let t = r.affine(&a, &b);
        let map = |p: &[f64; 2]| [a[0] * p[0] + b[0], a[1] * p[1] + b[1]];
        assert!(t.contains_point(&map(&inside)));
        assert!(!t.contains_point(&map(&outside)));
    }

    #[test]
    fn expanded_pads_all_dims() {
        let r = r2([0.0, 1.0], [1.0, 2.0]);
        assert_eq!(r.expanded(0.5), r2([-0.5, 0.5], [1.5, 2.5]));
    }

    #[test]
    fn display_renders() {
        let r = r2([0.0, 1.0], [1.0, 2.0]);
        assert_eq!(r.to_string(), "[0..1, 1..2]");
    }
}
