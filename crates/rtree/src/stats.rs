//! Access statistics.
//!
//! The paper reports the *number of disk accesses* alongside wall-clock
//! times; we model one node visit as one (simulated) page read. Every query
//! method returns a [`SearchStats`] so callers can assert claims like
//! "the number of disk accesses is the same with and without
//! transformations" (Section 5, Figure 8 discussion).

/// Counters collected during a single query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes (internal + leaf) visited — the simulated disk-access count.
    pub nodes_visited: u64,
    /// Leaf nodes visited.
    pub leaves_visited: u64,
    /// Entries whose rectangle was tested against the query.
    pub entries_tested: u64,
    /// Leaf entries that passed the index-level test (candidates handed to
    /// post-processing).
    pub candidates: u64,
}

impl SearchStats {
    /// Merges another stats record into this one (useful for joins, which
    /// run many sub-queries).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.entries_tested += other.entries_tested;
        self.candidates += other.candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums() {
        let mut a = SearchStats {
            nodes_visited: 1,
            leaves_visited: 2,
            entries_tested: 3,
            candidates: 4,
        };
        let b = SearchStats {
            nodes_visited: 10,
            leaves_visited: 20,
            entries_tested: 30,
            candidates: 40,
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.leaves_visited, 22);
        assert_eq!(a.entries_tested, 33);
        assert_eq!(a.candidates, 44);
    }
}
