//! Access statistics.
//!
//! The paper reports the *number of disk accesses* alongside wall-clock
//! times; we model one node visit as one (simulated) page read. Every query
//! method returns a [`SearchStats`] so callers can assert claims like
//! "the number of disk accesses is the same with and without
//! transformations" (Section 5, Figure 8 discussion).

use crate::node::{Entry, Node};
use crate::tree::RStarTree;

/// Counters collected during a single query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes (internal + leaf) visited — the simulated disk-access count.
    pub nodes_visited: u64,
    /// Leaf nodes visited.
    pub leaves_visited: u64,
    /// Entries whose rectangle was tested against the query.
    pub entries_tested: u64,
    /// Leaf entries that passed the index-level test (candidates handed to
    /// post-processing).
    pub candidates: u64,
    /// Buffer-pool hits: node fetches served from a resident page.
    /// Always zero in in-memory mode.
    pub pool_hits: u64,
    /// Buffer-pool misses: node fetches that read a page from disk.
    /// Always zero in in-memory mode; this is the *measured* disk-access
    /// count, as opposed to the simulated `nodes_visited`.
    pub pool_misses: u64,
}

impl SearchStats {
    /// Merges another stats record into this one (useful for joins, which
    /// run many sub-queries).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.entries_tested += other.entries_tested;
        self.candidates += other.candidates;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }
}

/// Aggregate shape of one tree level, for cost estimation.
///
/// A query planner predicts node accesses with the classic R-tree cost
/// model (Kamel & Faloutsos): the probability that a node's MBR intersects
/// a query rectangle is, per dimension, roughly
/// `min(1, (node_extent + query_extent) / data_extent)`. That needs, per
/// level, the node count and the *average MBR side length* in every
/// dimension — exactly what this profile carries.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Distance from the leaves (`0` = leaf level, last entry = root).
    pub level: u32,
    /// Number of nodes at this level.
    pub nodes: u64,
    /// Total entries across this level's nodes.
    pub entries: u64,
    /// Mean MBR side length per dimension, averaged over the level's nodes.
    pub avg_extent: Vec<f64>,
}

impl<T> RStarTree<T> {
    /// Per-level shape statistics, leaf level first, root last. Empty for
    /// an empty tree. The walk is deterministic (insertion structure), so
    /// two structurally identical trees — e.g. one restored from a
    /// snapshot — profile identically, bit for bit.
    pub fn level_profile(&self) -> Vec<LevelStats> {
        if self.is_empty() {
            return Vec::new();
        }
        let dims = self.dims().unwrap_or(0);
        let levels = self.root.level as usize + 1;
        let mut profile: Vec<LevelStats> = (0..levels)
            .map(|level| LevelStats {
                level: level as u32,
                nodes: 0,
                entries: 0,
                avg_extent: vec![0.0; dims],
            })
            .collect();
        profile_node(&self.root, &mut profile);
        for level in &mut profile {
            if level.nodes > 0 {
                for e in &mut level.avg_extent {
                    *e /= level.nodes as f64;
                }
            }
        }
        profile
    }
}

fn profile_node<T>(node: &Node<T>, profile: &mut [LevelStats]) {
    let slot = &mut profile[node.level as usize];
    slot.nodes += 1;
    slot.entries += node.entries.len() as u64;
    let mbr = node.mbr();
    for (d, e) in slot.avg_extent.iter_mut().enumerate() {
        *e += mbr.hi()[d] - mbr.lo()[d];
    }
    for entry in &node.entries {
        if let Entry::Node { child, .. } = entry {
            profile_node(child, profile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn level_profile_counts_nodes_and_extents() {
        let mut tree = RStarTree::default();
        assert!(tree.level_profile().is_empty());
        for i in 0..200 {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(Rect::from_point(&[x, y]), i);
        }
        let profile = tree.level_profile();
        assert_eq!(profile.len() as u32, tree.height());
        // Leaf level first, root last; the root level has exactly one node.
        assert_eq!(profile[0].level, 0);
        assert_eq!(profile.last().unwrap().nodes, 1);
        // Every inserted item appears exactly once among the leaf entries.
        assert_eq!(profile[0].entries, 200);
        // Internal entries at level l+1 reference the nodes at level l.
        for w in profile.windows(2) {
            assert_eq!(w[1].entries, w[0].nodes);
        }
        // Average extents are bounded by the data extent.
        for level in &profile {
            assert_eq!(level.avg_extent.len(), 2);
            for (d, e) in level.avg_extent.iter().enumerate() {
                let bounds = tree.bounds().unwrap();
                assert!(*e >= 0.0 && *e <= bounds.hi()[d] - bounds.lo()[d] + 1e-12);
            }
        }
    }

    #[test]
    fn absorb_sums() {
        let mut a = SearchStats {
            nodes_visited: 1,
            leaves_visited: 2,
            entries_tested: 3,
            candidates: 4,
            pool_hits: 5,
            pool_misses: 6,
        };
        let b = SearchStats {
            nodes_visited: 10,
            leaves_visited: 20,
            entries_tested: 30,
            candidates: 40,
            pool_hits: 50,
            pool_misses: 60,
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.leaves_visited, 22);
        assert_eq!(a.entries_tested, 33);
        assert_eq!(a.candidates, 44);
        assert_eq!(a.pool_hits, 55);
        assert_eq!(a.pool_misses, 66);
    }
}
