//! Tree nodes and entries.

use crate::rect::Rect;

/// An entry of a node: either a data item (in a leaf) or a child node (in an
/// internal node), each under a bounding rectangle.
#[derive(Debug, Clone)]
pub(crate) enum Entry<T> {
    /// Leaf-level entry: a (possibly degenerate) rectangle and its payload.
    Leaf { rect: Rect, item: T },
    /// Internal entry: the stored MBR of the child subtree.
    Node { rect: Rect, child: Box<Node<T>> },
}

impl<T> Entry<T> {
    #[inline]
    pub(crate) fn rect(&self) -> &Rect {
        match self {
            Entry::Leaf { rect, .. } => rect,
            Entry::Node { rect, .. } => rect,
        }
    }

    /// The level this entry belongs *at* (leaf entries live at level 0;
    /// an internal entry at level `child.level + 1`).
    pub(crate) fn target_level(&self) -> u32 {
        match self {
            Entry::Leaf { .. } => 0,
            Entry::Node { child, .. } => child.level + 1,
        }
    }
}

/// A tree node. `level == 0` means leaf; the root is the highest level.
#[derive(Debug, Clone)]
pub(crate) struct Node<T> {
    pub(crate) level: u32,
    pub(crate) entries: Vec<Entry<T>>,
}

impl<T> Node<T> {
    pub(crate) fn new_leaf() -> Self {
        Node {
            level: 0,
            entries: Vec::new(),
        }
    }

    pub(crate) fn new(level: u32, entries: Vec<Entry<T>>) -> Self {
        Node { level, entries }
    }

    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Recomputes the minimum bounding rectangle of all entries.
    ///
    /// # Panics
    /// Panics on an empty node (only the empty-tree root has no entries and
    /// callers guard that case).
    pub(crate) fn mbr(&self) -> Rect {
        let mut it = self.entries.iter();
        let first = it.next().expect("mbr of empty node").rect().clone();
        it.fold(first, |mut acc, e| {
            acc.union_assign(e.rect());
            acc
        })
    }
}
