//! A file-backed R\*-tree: the persist node encoding split into one page
//! per node, fetched through a [`BufferPool`].
//!
//! A [`PagedTree`] is created *from* an in-memory [`RStarTree`] (its
//! structure is copied node-for-node, child pointers becoming
//! [`PageId`]s) and answers the same queries through the paged traversals
//! in `search`/`knn`/`join` — byte-identically, including every
//! traversal counter, because each paged traversal mirrors its in-memory
//! twin step for step. What the paged versions add are the *measured*
//! `pool_hits`/`pool_misses` counters.
//!
//! Payloads are fixed to `u64` (the id-shaped types every index in this
//! workspace stores); `create_from`/`materialize` bridge to the generic
//! item type with caller-supplied conversions.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use tsq_store::{crc32, Decoder, Encoder, StoreError, StoreResult};

use crate::config::{RTreeConfig, MAX_PAGE_BYTES, PAGE_ALIGN, PAGE_HEADER_BYTES};
use crate::node::{Entry, Node};
use crate::page::{seal_page, BufferPool, PageId, PagePin};
use crate::persist::{read_rect, write_rect, MAX_LEVEL};
use crate::rect::Rect;
use crate::stats::SearchStats;
use crate::tree::RStarTree;

/// Page-file magic bytes.
const MAGIC: &[u8; 8] = b"TSQPAGE\0";

/// Page-file format version.
const VERSION: u32 = 1;

/// Fixed header length: magic 8 · version 4 · page_size 4 · page_count 8
/// · root 8 · config 12 · len 8 · root_level 4 · dims flag 1 · dims 8 ·
/// CRC-32 4.
const HEADER_BYTES: usize = 69;

/// One decoded page: a node whose children are page references.
#[derive(Debug)]
pub struct PagedNode {
    /// Distance from the leaves (0 = leaf).
    pub(crate) level: u32,
    /// Entries in stored order.
    pub(crate) entries: Vec<PagedEntry>,
}

/// One entry of a paged node.
#[derive(Debug)]
pub(crate) enum PagedEntry {
    /// A data item (leaf level).
    Leaf {
        /// Stored bounding rectangle.
        rect: Rect,
        /// The payload word.
        item: u64,
    },
    /// A child node reference (internal levels).
    Child {
        /// The child subtree's bounding rectangle.
        rect: Rect,
        /// Page holding the child node.
        page: PageId,
    },
}

impl PagedEntry {
    pub(crate) fn rect(&self) -> &Rect {
        match self {
            PagedEntry::Leaf { rect, .. } | PagedEntry::Child { rect, .. } => rect,
        }
    }
}

impl PagedNode {
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Bounding rectangle of all entries; `None` for an empty node.
    pub(crate) fn mbr(&self) -> Option<Rect> {
        let mut it = self.entries.iter();
        let mut mbr = it.next()?.rect().clone();
        for e in it {
            mbr.union_assign(e.rect());
        }
        Some(mbr)
    }
}

/// A read-only R\*-tree stored one-node-per-page in a file, fetched
/// through a pin-counted LRU [`BufferPool`].
#[derive(Debug)]
pub struct PagedTree {
    pool: BufferPool<PagedNode>,
    path: PathBuf,
    root: PageId,
    root_level: u32,
    config: RTreeConfig,
    len: usize,
    dims: Option<usize>,
    page_size: usize,
    page_count: u64,
}

/// Page size for a tree of the given fan-out and dimensionality: the
/// worst-case node payload rounded up to [`PAGE_ALIGN`].
///
/// # Errors
/// [`StoreError::Corrupt`] when a full node cannot fit [`MAX_PAGE_BYTES`].
pub fn page_size_for(config: &RTreeConfig, dims: usize) -> StoreResult<usize> {
    let entry_bytes = dims
        .checked_mul(16)
        .and_then(|r| r.checked_add(8))
        .ok_or_else(|| StoreError::corrupt("page entry size overflows"))?;
    let payload = config
        .max_entries
        .checked_mul(entry_bytes)
        .and_then(|p| p.checked_add(PAGE_HEADER_BYTES))
        .ok_or_else(|| StoreError::corrupt("page size overflows"))?;
    let size = payload.div_ceil(PAGE_ALIGN) * PAGE_ALIGN;
    if size > MAX_PAGE_BYTES {
        return Err(StoreError::corrupt(format!(
            "a node of {} {dims}-dimensional entries needs a {size}-byte page, above the {MAX_PAGE_BYTES}-byte cap",
            config.max_entries
        )));
    }
    Ok(size)
}

impl<T> RStarTree<T> {
    /// Writes this tree as a page file at `path` (one node per page,
    /// children before parents, the root last), converting each item to
    /// its stored `u64` with `to_u64`.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures, [`StoreError::Corrupt`] when
    /// the configuration cannot fit a page.
    pub fn write_paged<F: FnMut(&T) -> u64>(&self, path: &Path, to_u64: F) -> StoreResult<()> {
        PagedTree::create_from(path, self, to_u64)
    }
}

impl PagedTree {
    /// Creates a page file at `path` mirroring `tree` node-for-node.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures, [`StoreError::Corrupt`] when
    /// the configuration cannot fit a page.
    pub fn create_from<T, F: FnMut(&T) -> u64>(
        path: &Path,
        tree: &RStarTree<T>,
        mut to_u64: F,
    ) -> StoreResult<()> {
        let config = *tree.config();
        let dims = tree.dims();
        let page_size = page_size_for(&config, dims.unwrap_or(1))?;
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        // Pages go first conceptually, but the header block leads the
        // file; its page_count/root fields are known up front because the
        // node count is just a walk.
        let page_count = count_nodes(&tree.root);
        let root = PageId(page_count - 1);
        let header = encode_header(
            page_size,
            page_count,
            root,
            &config,
            tree.len(),
            tree.root.level,
            dims,
        );
        w.write_all(&header)?;
        w.write_all(&vec![0u8; PAGE_ALIGN - HEADER_BYTES])?;
        let mut next = 0u64;
        write_subtree(&mut w, &tree.root, &mut to_u64, &mut next, page_size)?;
        debug_assert_eq!(next, page_count);
        w.flush()?;
        Ok(())
    }

    /// Opens a page file with a buffer pool of `capacity_pages` frames
    /// (clamped to at least 1; `usize::MAX` for unbounded).
    ///
    /// # Errors
    /// Typed [`StoreError`]s for I/O failures, bad magic/version, header
    /// corruption, or geometry that disagrees with the file's size.
    pub fn open(path: &Path, capacity_pages: usize) -> StoreResult<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header)
            .map_err(|_| StoreError::truncated("page file header"))?;
        let parsed = decode_header(&header)?;
        let expected_len = PAGE_ALIGN as u64 + parsed.page_count * parsed.page_size as u64;
        let actual_len = file.metadata()?.len();
        if actual_len != expected_len {
            return Err(StoreError::corrupt(format!(
                "page file is {actual_len} byte(s), header implies {expected_len}"
            )));
        }
        let pool = BufferPool::new(file, parsed.page_size, parsed.page_count, capacity_pages);
        // Every traversal enters through the root: keep it exempt from
        // eviction so a warm pool never re-faults level 0 of the search.
        pool.mark_sticky(parsed.root);
        Ok(PagedTree {
            pool,
            path: path.to_path_buf(),
            root: parsed.root,
            root_level: parsed.root_level,
            config: parsed.config,
            len: parsed.len,
            dims: parsed.dims,
            page_size: parsed.page_size,
            page_count: parsed.page_count,
        })
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the stored rectangles (`None` when empty).
    pub fn dims(&self) -> Option<usize> {
        self.dims
    }

    /// The tree's tuning parameters.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Height in levels (1 for a root-only tree).
    pub fn height(&self) -> u32 {
        self.root_level + 1
    }

    /// The page file backing this tree.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages in the file (= nodes in the tree).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The buffer pool (for its counters and `flush`).
    pub fn pool(&self) -> &BufferPool<PagedNode> {
        &self.pool
    }

    pub(crate) fn root(&self) -> PageId {
        self.root
    }

    pub(crate) fn root_level(&self) -> u32 {
        self.root_level
    }

    /// Pins the page holding one node, recording the hit/miss in `stats`
    /// and verifying the node sits at `expected_level` (which bounds
    /// recursion on hostile files: levels strictly decrease toward 0).
    pub(crate) fn fetch(
        &self,
        id: PageId,
        expected_level: u32,
        stats: &mut SearchStats,
    ) -> StoreResult<PagePin<'_, PagedNode>> {
        let config = &self.config;
        let dims = self.dims.unwrap_or(0);
        let page_count = self.page_count;
        let (pin, hit) = self
            .pool
            .pin(id, |payload| decode_node(payload, config, dims, page_count))?;
        if hit {
            stats.pool_hits += 1;
        } else {
            stats.pool_misses += 1;
        }
        if pin.level != expected_level {
            return Err(StoreError::corrupt(format!(
                "{id} holds a level-{} node where level {expected_level} was expected",
                pin.level
            )));
        }
        Ok(pin)
    }

    /// Rebuilds the full in-memory tree from the pages, converting stored
    /// `u64` payloads back with `from_u64`. Validation mirrors the
    /// snapshot restore: stored MBRs must equal recomputed child MBRs
    /// bitwise, and the leaf count must match the recorded length.
    ///
    /// # Errors
    /// Typed [`StoreError`]s for I/O failures or structural corruption.
    pub fn materialize<T, F: FnMut(u64) -> T>(&self, mut from_u64: F) -> StoreResult<RStarTree<T>> {
        let mut tree = RStarTree::new(self.config);
        if self.len == 0 {
            return Ok(tree);
        }
        let mut stats = SearchStats::default();
        let mut leaves = 0usize;
        let root = self.materialize_node(
            self.root,
            self.root_level,
            &mut from_u64,
            &mut leaves,
            &mut stats,
        )?;
        if leaves != self.len {
            return Err(StoreError::corrupt(format!(
                "page file claims {} item(s) but stores {leaves}",
                self.len
            )));
        }
        tree.root = root;
        if let Some(d) = self.dims {
            tree.force_size(self.len, d);
        }
        Ok(tree)
    }

    fn materialize_node<T, F: FnMut(u64) -> T>(
        &self,
        id: PageId,
        level: u32,
        from_u64: &mut F,
        leaves: &mut usize,
        stats: &mut SearchStats,
    ) -> StoreResult<Node<T>> {
        let page = self.fetch(id, level, stats)?;
        let mut entries = Vec::with_capacity(page.entries.len());
        for entry in &page.entries {
            match entry {
                PagedEntry::Leaf { rect, item } => {
                    *leaves += 1;
                    entries.push(Entry::Leaf {
                        rect: rect.clone(),
                        item: from_u64(*item),
                    });
                }
                PagedEntry::Child { rect, page } => {
                    let child = self.materialize_node(*page, level - 1, from_u64, leaves, stats)?;
                    let computed = child.mbr();
                    if *rect != computed {
                        return Err(StoreError::corrupt(format!(
                            "stored MBR {rect} differs from recomputed child MBR {computed}"
                        )));
                    }
                    entries.push(Entry::Node {
                        rect: rect.clone(),
                        child: Box::new(child),
                    });
                }
            }
        }
        Ok(Node::new(level, entries))
    }
}

fn count_nodes<T>(node: &Node<T>) -> u64 {
    let mut n = 1;
    for entry in &node.entries {
        if let Entry::Node { child, .. } = entry {
            n += count_nodes(child);
        }
    }
    n
}

/// Writes `node`'s subtree post-order (children first), assigning page
/// ids sequentially, and returns the id `node` landed on. Post-order
/// means the file is written front to back in one pass while every
/// parent already knows its children's ids.
fn write_subtree<T, F: FnMut(&T) -> u64>(
    w: &mut BufWriter<File>,
    node: &Node<T>,
    to_u64: &mut F,
    next: &mut u64,
    page_size: usize,
) -> StoreResult<PageId> {
    let mut child_ids = Vec::new();
    for entry in &node.entries {
        if let Entry::Node { child, .. } = entry {
            child_ids.push(write_subtree(w, child, to_u64, next, page_size)?);
        }
    }
    let mut enc = Encoder::new();
    enc.u32(node.level);
    enc.u32(node.entries.len() as u32);
    let mut ci = 0;
    for entry in &node.entries {
        write_rect(&mut enc, entry.rect());
        match entry {
            Entry::Leaf { item, .. } => enc.u64(to_u64(item)),
            Entry::Node { .. } => {
                enc.u64(child_ids[ci].0);
                ci += 1;
            }
        }
    }
    let payload = enc.into_bytes();
    w.write_all(&seal_page(&payload, page_size)?)?;
    let id = PageId(*next);
    *next += 1;
    Ok(id)
}

/// Decodes one node payload, validating entry counts, rectangle bounds,
/// and child page references — corrupt pages become typed errors.
fn decode_node(
    payload: &[u8],
    config: &RTreeConfig,
    dims: usize,
    page_count: u64,
) -> StoreResult<PagedNode> {
    let mut dec = Decoder::new(payload);
    let level = dec.u32("node level")?;
    if level >= MAX_LEVEL {
        return Err(StoreError::corrupt(format!(
            "node level {level} exceeds the maximum tree height {MAX_LEVEL}"
        )));
    }
    let count = dec.u32("node entry count")? as usize;
    if count > config.max_entries {
        return Err(StoreError::corrupt(format!(
            "node with {count} entries exceeds max_entries {}",
            config.max_entries
        )));
    }
    if count > 0 && dims == 0 {
        return Err(StoreError::corrupt(
            "populated node in a zero-dimensional page file",
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let rect = read_rect(&mut dec, dims)?;
        let word = dec.u64("entry payload")?;
        if level == 0 {
            entries.push(PagedEntry::Leaf { rect, item: word });
        } else {
            if word >= page_count {
                return Err(StoreError::corrupt(format!(
                    "child reference to page {word} of {page_count}"
                )));
            }
            entries.push(PagedEntry::Child {
                rect,
                page: PageId(word),
            });
        }
    }
    dec.finish()?;
    Ok(PagedNode { level, entries })
}

struct ParsedHeader {
    page_size: usize,
    page_count: u64,
    root: PageId,
    config: RTreeConfig,
    len: usize,
    root_level: u32,
    dims: Option<usize>,
}

#[allow(clippy::too_many_arguments)]
fn encode_header(
    page_size: usize,
    page_count: u64,
    root: PageId,
    config: &RTreeConfig,
    len: usize,
    root_level: u32,
    dims: Option<usize>,
) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(page_size as u32).to_le_bytes());
    h[16..24].copy_from_slice(&page_count.to_le_bytes());
    h[24..32].copy_from_slice(&root.0.to_le_bytes());
    h[32..36].copy_from_slice(&(config.max_entries as u32).to_le_bytes());
    h[36..40].copy_from_slice(&(config.min_entries as u32).to_le_bytes());
    h[40..44].copy_from_slice(&(config.reinsert_count as u32).to_le_bytes());
    h[44..52].copy_from_slice(&(len as u64).to_le_bytes());
    h[52..56].copy_from_slice(&root_level.to_le_bytes());
    h[56] = dims.is_some() as u8;
    h[57..65].copy_from_slice(&(dims.unwrap_or(0) as u64).to_le_bytes());
    let crc = crc32(&h[..HEADER_BYTES - 4]);
    h[HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    h
}

fn decode_header(h: &[u8; HEADER_BYTES]) -> StoreResult<ParsedHeader> {
    if &h[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let u32_at = |o: usize| u32::from_le_bytes(h[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(h[o..o + 8].try_into().expect("8 bytes"));
    let version = u32_at(8);
    if version > VERSION {
        return Err(StoreError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let stored = u32_at(HEADER_BYTES - 4);
    let computed = crc32(&h[..HEADER_BYTES - 4]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let page_size = u32_at(12) as usize;
    if !(PAGE_ALIGN..=MAX_PAGE_BYTES).contains(&page_size) || page_size % PAGE_ALIGN != 0 {
        return Err(StoreError::corrupt(format!(
            "page size {page_size} outside {PAGE_ALIGN}..={MAX_PAGE_BYTES} or unaligned"
        )));
    }
    let page_count = u64_at(16);
    if page_count == 0 {
        return Err(StoreError::corrupt("page file with zero pages"));
    }
    let root = PageId(u64_at(24));
    if root.0 >= page_count {
        return Err(StoreError::corrupt(format!(
            "root {} out of range (file holds {page_count} page(s))",
            root.0
        )));
    }
    // The config codec's bounds (fan-out within page geometry, minimum
    // fill, reinsert fraction) are re-checked through the shared reader.
    let mut cfg_enc = Encoder::new();
    cfg_enc.u32(u32_at(32));
    cfg_enc.u32(u32_at(36));
    cfg_enc.u32(u32_at(40));
    let cfg_bytes = cfg_enc.into_bytes();
    let mut cfg_dec = Decoder::new(&cfg_bytes);
    let config = crate::persist::read_config(&mut cfg_dec)?;
    let len = usize::try_from(u64_at(44))
        .map_err(|_| StoreError::corrupt("tree length exceeds usize"))?;
    let root_level = u32_at(52);
    if root_level >= MAX_LEVEL {
        return Err(StoreError::corrupt(format!(
            "root level {root_level} exceeds the maximum tree height {MAX_LEVEL}"
        )));
    }
    let dims = match h[56] {
        0 => None,
        1 => Some(
            usize::try_from(u64_at(57))
                .map_err(|_| StoreError::corrupt("dimensionality exceeds usize"))?,
        ),
        other => {
            return Err(StoreError::corrupt(format!("dims flag byte {other}")));
        }
    };
    if len == 0 && (root_level != 0 || dims.is_some()) {
        return Err(StoreError::corrupt(
            "empty tree must have a level-0 root and no dimensionality",
        ));
    }
    if len > 0 && dims.is_none() {
        return Err(StoreError::corrupt("non-empty tree without dimensionality"));
    }
    // A consistent page must be able to hold a full node.
    if page_size_for(&config, dims.unwrap_or(1))? > page_size {
        return Err(StoreError::corrupt(format!(
            "page size {page_size} cannot hold a node of {} {}-dimensional entries",
            config.max_entries,
            dims.unwrap_or(1)
        )));
    }
    Ok(ParsedHeader {
        page_size,
        page_count,
        root,
        config,
        len,
        root_level,
        dims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsq-paged-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    fn sample_tree(n: usize, fanout: usize) -> RStarTree<usize> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(fanout));
        for i in 0..n {
            let x = (i % 17) as f64;
            let y = (i / 17) as f64;
            t.insert_point(&[x, y, (i % 5) as f64], i);
        }
        t
    }

    #[test]
    fn page_size_rounds_up_to_alignment() {
        let cfg = RTreeConfig::default();
        let size = page_size_for(&cfg, 6).unwrap();
        assert_eq!(size % PAGE_ALIGN, 0);
        assert!(size >= 32 * (6 * 16 + 8));
        // A fan-out too large for any page is a typed error.
        let huge = RTreeConfig {
            max_entries: crate::config::MAX_FANOUT,
            min_entries: 2,
            reinsert_count: 0,
        };
        assert!(matches!(
            page_size_for(&huge, 64),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn round_trips_through_materialize_byte_identically() {
        for n in [0usize, 1, 7, 40, 400] {
            let t = sample_tree(n, 8);
            let path = temp_path(&format!("round-{n}.pages"));
            PagedTree::create_from(&path, &t, |&i| i as u64).unwrap();
            let paged = PagedTree::open(&path, usize::MAX).unwrap();
            assert_eq!(paged.len(), t.len());
            assert_eq!(paged.dims(), t.dims());
            assert_eq!(paged.config(), t.config());
            if n > 0 {
                assert_eq!(paged.height(), t.height());
            }
            let back: RStarTree<usize> = paged.materialize(|w| w as usize).unwrap();
            let mut ea = Encoder::new();
            t.write_to(&mut ea, &mut |e, &id| e.usize(id));
            let mut eb = Encoder::new();
            back.write_to(&mut eb, &mut |e, &id| e.usize(id));
            assert_eq!(ea.into_bytes(), eb.into_bytes(), "n = {n}");
        }
    }

    #[test]
    fn materialize_works_at_capacity_one() {
        let t = sample_tree(200, 6);
        let path = temp_path("cap1.pages");
        PagedTree::create_from(&path, &t, |&i| i as u64).unwrap();
        let paged = PagedTree::open(&path, 1).unwrap();
        let back: RStarTree<usize> = paged.materialize(|w| w as usize).unwrap();
        assert_eq!(back.len(), 200);
        back.validate();
        // Capacity 1 means effectively every fetch faulted.
        assert!(paged.pool().misses() >= paged.page_count());
    }

    #[test]
    fn header_corruption_is_typed() {
        let t = sample_tree(50, 8);
        let path = temp_path("hdr.pages");
        PagedTree::create_from(&path, &t, |&i| i as u64).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        let p = temp_path("hdr-magic.pages");
        std::fs::write(&p, &bad).unwrap();
        assert!(matches!(
            PagedTree::open(&p, 4),
            Err(StoreError::BadMagic | StoreError::ChecksumMismatch { .. })
        ));

        // Future version.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let p = temp_path("hdr-ver.pages");
        std::fs::write(&p, &bad).unwrap();
        assert!(matches!(
            PagedTree::open(&p, 4),
            Err(StoreError::UnsupportedVersion { got: 99, .. })
        ));

        // Flipped header byte: checksum mismatch.
        let mut bad = good.clone();
        bad[44] ^= 0x01;
        let p = temp_path("hdr-flip.pages");
        std::fs::write(&p, &bad).unwrap();
        assert!(matches!(
            PagedTree::open(&p, 4),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Truncated file: size disagrees with the header.
        let p = temp_path("hdr-trunc.pages");
        std::fs::write(&p, &good[..good.len() - 100]).unwrap();
        assert!(matches!(
            PagedTree::open(&p, 4),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn page_corruption_surfaces_at_fetch_time() {
        let t = sample_tree(120, 8);
        let path = temp_path("pagecorrupt.pages");
        PagedTree::create_from(&path, &t, |&i| i as u64).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first page's payload.
        let off = PAGE_ALIGN + crate::page::PAGE_PREFIX_BYTES + 3;
        bytes[off] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let paged = PagedTree::open(&path, 8).unwrap();
        let err = paged
            .materialize::<usize, _>(|w| w as usize)
            .expect_err("corrupt page must not materialize");
        assert!(matches!(
            err,
            StoreError::ChecksumMismatch { .. } | StoreError::Corrupt { .. }
        ));
    }
}
