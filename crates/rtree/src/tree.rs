//! The R\*-tree proper: insertion (ChooseSubtree + forced reinsert +
//! topological split), deletion with tree condensation, and structural
//! invariant checking.

use crate::config::RTreeConfig;
use crate::node::{Entry, Node};
use crate::rect::Rect;
use crate::split::rstar_split;

/// An in-memory R\*-tree (Beckmann, Kriegel, Schneider, Seeger 1990) over
/// items of type `T`.
///
/// The paper's experiments (Section 5) run on "Norbert Beckmann's Version 2
/// implementation of the R\*-tree"; this is a faithful reimplementation of
/// the published algorithms: ChooseSubtree with overlap-minimization at the
/// leaf level, forced reinsertion of the 30% farthest entries on first
/// overflow per level, and the margin-driven topological split.
///
/// Dimensionality is dynamic: it is fixed by the first rectangle inserted
/// and enforced afterwards.
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    pub(crate) config: RTreeConfig,
    pub(crate) root: Node<T>,
    len: usize,
    dims: Option<usize>,
}

enum Action<T> {
    None,
    Split(Entry<T>),
    Reinsert(Vec<Entry<T>>),
}

struct InsertCtx {
    root_level: u32,
    /// `reinserted[level]` is set after the first overflow at that level.
    reinserted: Vec<bool>,
}

impl InsertCtx {
    fn new(root_level: u32) -> Self {
        InsertCtx {
            root_level,
            reinserted: vec![false; root_level as usize + 1],
        }
    }

    fn may_reinsert(&mut self, level: u32) -> bool {
        if level == self.root_level {
            return false;
        }
        let slot = &mut self.reinserted[level as usize];
        if *slot {
            false
        } else {
            *slot = true;
            true
        }
    }
}

impl<T> Default for RStarTree<T> {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl<T> RStarTree<T> {
    /// Creates an empty tree with the given configuration.
    pub fn new(config: RTreeConfig) -> Self {
        config.validate();
        RStarTree {
            config,
            root: Node::new_leaf(),
            len: 0,
            dims: None,
        }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 for an empty tree, 1 for a root-only leaf).
    pub fn height(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            self.root.level + 1
        }
    }

    /// Dimensionality, if fixed by a first insert.
    pub fn dims(&self) -> Option<usize> {
        self.dims
    }

    /// The configuration in use.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Bounding rectangle of the whole tree, `None` when empty.
    pub fn bounds(&self) -> Option<Rect> {
        if self.len == 0 {
            None
        } else {
            Some(self.root.mbr())
        }
    }

    /// Inserts an item under a bounding rectangle.
    ///
    /// # Panics
    /// Panics if the rectangle's dimensionality differs from previously
    /// inserted data.
    pub fn insert(&mut self, rect: Rect, item: T) {
        self.check_dims(rect.dims());
        self.len += 1;
        self.insert_entries(vec![(Entry::Leaf { rect, item }, 0)]);
    }

    /// Inserts an item stored at a point.
    pub fn insert_point(&mut self, point: &[f64], item: T) {
        self.insert(Rect::from_point(point), item);
    }

    /// Sets cached size metadata after a bulk build (crate-internal).
    pub(crate) fn force_size(&mut self, len: usize, dims: usize) {
        self.len = len;
        self.dims = Some(dims);
    }

    fn check_dims(&mut self, d: usize) {
        match self.dims {
            None => self.dims = Some(d),
            Some(existing) => assert_eq!(
                existing, d,
                "dimensionality mismatch: tree holds {existing}-d data, got {d}-d"
            ),
        }
    }

    /// Drives a work-list of (entry, target level) insertions, handling root
    /// splits and forced-reinsert queues.
    fn insert_entries(&mut self, mut pending: Vec<(Entry<T>, u32)>) {
        let mut ctx = InsertCtx::new(self.root.level);
        while let Some((entry, level)) = pending.pop() {
            match insert_rec(&mut self.root, entry, level, &mut ctx, &self.config) {
                Action::None => {}
                Action::Split(sibling) => {
                    self.grow_root(sibling);
                    ctx.root_level = self.root.level;
                    ctx.reinserted.resize(self.root.level as usize + 1, false);
                }
                Action::Reinsert(entries) => {
                    for e in entries {
                        let lvl = e.target_level();
                        pending.push((e, lvl));
                    }
                }
            }
        }
    }

    fn grow_root(&mut self, sibling: Entry<T>) {
        let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
        let level = old_root.level + 1;
        let old_entry = Entry::Node {
            rect: old_root.mbr(),
            child: Box::new(old_root),
        };
        self.root = Node::new(level, vec![old_entry, sibling]);
    }

    /// Removes one item whose stored rectangle equals `rect` and whose
    /// payload satisfies `pred`. Returns the removed item, or `None` if no
    /// match exists.
    pub fn remove<F: Fn(&T) -> bool>(&mut self, rect: &Rect, pred: F) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let mut orphans: Vec<Entry<T>> = Vec::new();
        let removed = delete_rec(&mut self.root, rect, &pred, &self.config, &mut orphans);
        if removed.is_none() {
            debug_assert!(orphans.is_empty());
            return None;
        }
        self.len -= 1;
        // Shrink the root while it is an internal node with a single child.
        while !self.root.is_leaf() && self.root.entries.len() == 1 {
            let only = self.root.entries.pop().expect("one entry");
            match only {
                Entry::Node { child, .. } => self.root = *child,
                Entry::Leaf { .. } => unreachable!("leaf entry in internal root"),
            }
        }
        if self.root.entries.is_empty() {
            self.root = Node::new_leaf();
        }
        if !orphans.is_empty() {
            let pending: Vec<(Entry<T>, u32)> = orphans
                .into_iter()
                .map(|e| {
                    let lvl = e.target_level();
                    (e, lvl)
                })
                .collect();
            self.insert_entries(pending);
        }
        if self.len == 0 {
            self.dims = None;
            self.root = Node::new_leaf();
        }
        Some(removed.expect("checked above"))
    }

    /// Replaces one entry in place with a **grown** version of itself:
    /// finds the leaf entry whose stored rectangle equals `old` and whose
    /// payload satisfies `pred`, swaps in `grown` and `item`, and unions
    /// `grown` into the stored MBR of every node on the path down.
    ///
    /// Because `grown` must contain `old`, bounds only loosen: no split,
    /// reinsertion or condensation can be needed, so the whole update is
    /// `O(height)`. This is the fast path streaming appends use to widen
    /// a partial trail chunk, where a `remove` + insert pair would pay
    /// the R\*-tree's forced-reinsertion constants for nothing.
    ///
    /// Returns `true` when an entry was updated, `false` when no entry
    /// matched (the tree is unchanged).
    ///
    /// # Panics
    /// Panics when `grown` does not contain `old` or on a dimensionality
    /// mismatch.
    pub fn grow_entry<F: Fn(&T) -> bool>(
        &mut self,
        old: &Rect,
        pred: F,
        grown: Rect,
        item: T,
    ) -> bool {
        assert!(
            grown.contains_rect(old),
            "grow_entry requires the new rectangle to contain the old one"
        );
        if let Some(dims) = self.dims {
            assert_eq!(grown.dims(), dims, "dimensionality mismatch in grow entry");
        }
        if self.len == 0 {
            return false;
        }
        let mut replacement = Some((grown, item));
        grow_rec(&mut self.root, old, &pred, &mut replacement)
    }

    /// Iterates over all `(rect, item)` pairs in unspecified order.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        if self.len > 0 {
            stack.push((&self.root, 0usize));
        }
        Iter { stack }
    }

    /// Verifies structural invariants; panics with a description on
    /// violation. Intended for tests and debugging.
    #[doc(hidden)]
    pub fn validate(&self) {
        if self.len == 0 {
            assert!(self.root.is_leaf() && self.root.entries.is_empty());
            return;
        }
        let counted = validate_node(&self.root, &self.config, true);
        assert_eq!(counted, self.len, "item count mismatch");
    }
}

/// Depth-first iterator over leaf entries.
pub struct Iter<'a, T> {
    stack: Vec<(&'a Node<T>, usize)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, idx)) = self.stack.pop() {
            if idx >= node.entries.len() {
                continue;
            }
            self.stack.push((node, idx + 1));
            match &node.entries[idx] {
                Entry::Leaf { rect, item } => return Some((rect, item)),
                Entry::Node { child, .. } => self.stack.push((child, 0)),
            }
        }
        None
    }
}

fn validate_node<T>(node: &Node<T>, cfg: &RTreeConfig, is_root: bool) -> usize {
    assert!(
        node.entries.len() <= cfg.max_entries,
        "node exceeds max_entries"
    );
    if !is_root {
        assert!(
            node.entries.len() >= cfg.min_entries,
            "non-root node below min_entries: {} < {}",
            node.entries.len(),
            cfg.min_entries
        );
    } else if !node.is_leaf() {
        assert!(
            node.entries.len() >= 2,
            "internal root must have >= 2 entries"
        );
    }
    if node.is_leaf() {
        for e in &node.entries {
            assert!(matches!(e, Entry::Leaf { .. }), "non-leaf entry in leaf");
        }
        node.entries.len()
    } else {
        let mut count = 0;
        for e in &node.entries {
            match e {
                Entry::Node { rect, child } => {
                    assert_eq!(child.level + 1, node.level, "level discontinuity");
                    let computed = child.mbr();
                    assert_eq!(rect, &computed, "stored MBR differs from computed MBR");
                    count += validate_node(child, cfg, false);
                }
                Entry::Leaf { .. } => panic!("leaf entry in internal node"),
            }
        }
        count
    }
}

fn insert_rec<T>(
    node: &mut Node<T>,
    entry: Entry<T>,
    target_level: u32,
    ctx: &mut InsertCtx,
    cfg: &RTreeConfig,
) -> Action<T> {
    if node.level == target_level {
        node.entries.push(entry);
        if node.entries.len() > cfg.max_entries {
            return overflow(node, ctx, cfg);
        }
        return Action::None;
    }
    debug_assert!(node.level > target_level, "descended past target level");
    let idx = choose_subtree(node, entry.rect());
    let action = {
        let child = match &mut node.entries[idx] {
            Entry::Node { child, .. } => child,
            Entry::Leaf { .. } => unreachable!("leaf entry in internal node"),
        };
        insert_rec(child, entry, target_level, ctx, cfg)
    };
    refresh_child_rect(node, idx);
    match action {
        Action::None => Action::None,
        Action::Reinsert(es) => Action::Reinsert(es),
        Action::Split(sibling) => {
            node.entries.push(sibling);
            if node.entries.len() > cfg.max_entries {
                overflow(node, ctx, cfg)
            } else {
                Action::None
            }
        }
    }
}

fn refresh_child_rect<T>(node: &mut Node<T>, idx: usize) {
    let computed = match &node.entries[idx] {
        Entry::Node { child, .. } => child.mbr(),
        Entry::Leaf { .. } => return,
    };
    if let Entry::Node { rect, .. } = &mut node.entries[idx] {
        *rect = computed;
    }
}

/// R\*-tree ChooseSubtree: at the level just above the leaves, minimize
/// overlap enlargement (ties: area enlargement, then area); higher up,
/// minimize area enlargement (ties: area).
fn choose_subtree<T>(node: &Node<T>, rect: &Rect) -> usize {
    debug_assert!(!node.is_leaf());
    let n = node.entries.len();
    debug_assert!(n > 0);
    if node.level == 1 {
        // Children are leaves: overlap-enlargement criterion.
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for i in 0..n {
            let ri = node.entries[i].rect();
            let enlarged = ri.union(rect);
            let mut overlap_delta = 0.0;
            for (j, ej) in node.entries.iter().enumerate() {
                if j == i {
                    continue;
                }
                let rj = ej.rect();
                overlap_delta += enlarged.intersection_area(rj) - ri.intersection_area(rj);
            }
            let key = (overlap_delta, ri.enlargement(rect), ri.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let ri = e.rect();
            let key = (ri.enlargement(rect), ri.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

fn overflow<T>(node: &mut Node<T>, ctx: &mut InsertCtx, cfg: &RTreeConfig) -> Action<T> {
    if cfg.reinsert_count > 0 && ctx.may_reinsert(node.level) {
        // Forced reinsert: remove the `p` entries whose centers lie farthest
        // from the node center, re-inserting the closer ones first
        // ("close reinsert" of the R* paper).
        let center = node.mbr().center();
        let p = cfg.reinsert_count.min(node.entries.len() - cfg.min_entries);
        if p > 0 {
            let mut order: Vec<usize> = (0..node.entries.len()).collect();
            let dist2 = |r: &Rect| -> f64 {
                r.center()
                    .iter()
                    .zip(&center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum()
            };
            order.sort_by(|&a, &b| {
                dist2(node.entries[a].rect()).total_cmp(&dist2(node.entries[b].rect()))
            });
            // Farthest p indices, marked for removal.
            let mut take = vec![false; node.entries.len()];
            for &i in &order[node.entries.len() - p..] {
                take[i] = true;
            }
            let mut kept = Vec::with_capacity(node.entries.len() - p);
            let mut removed = Vec::with_capacity(p);
            for (i, e) in std::mem::take(&mut node.entries).into_iter().enumerate() {
                if take[i] {
                    removed.push(e);
                } else {
                    kept.push(e);
                }
            }
            node.entries = kept;
            // Close reinsert: nearest first. `removed` currently holds
            // entries in original order; sort by distance ascending.
            removed.sort_by(|a, b| dist2(a.rect()).total_cmp(&dist2(b.rect())));
            // The work list is a stack (LIFO), so push farthest-first to
            // process nearest-first.
            removed.reverse();
            return Action::Reinsert(removed);
        }
    }
    let level = node.level;
    let entries = std::mem::take(&mut node.entries);
    let (g1, g2) = rstar_split(entries, cfg.min_entries, cfg.max_entries);
    node.entries = g1;
    let sibling = Node::new(level, g2);
    Action::Split(Entry::Node {
        rect: sibling.mbr(),
        child: Box::new(sibling),
    })
}

/// Recursive worker for [`RStarTree::grow_entry`]: descend like a
/// deletion, but on success only widen the path MBRs — never restructure.
fn grow_rec<T, F: Fn(&T) -> bool>(
    node: &mut Node<T>,
    old: &Rect,
    pred: &F,
    replacement: &mut Option<(Rect, T)>,
) -> bool {
    if node.is_leaf() {
        for entry in node.entries.iter_mut() {
            if let Entry::Leaf { rect, item } = entry {
                if rect == old && pred(item) {
                    let (grown, new_item) = replacement.take().expect("replacement used once");
                    *rect = grown;
                    *item = new_item;
                    return true;
                }
            }
        }
        return false;
    }
    for entry in node.entries.iter_mut() {
        let Entry::Node { rect, child } = entry else {
            unreachable!("leaf entry in internal node")
        };
        if !rect.intersects(old) {
            continue;
        }
        if grow_rec(child, old, pred, replacement) {
            // The grown rectangle is known (it was moved into the leaf);
            // recompute the child's MBR contribution cheaply by union —
            // growth can only widen, so union with the child MBR is exact.
            rect.union_assign(&child.mbr());
            return true;
        }
    }
    false
}

fn delete_rec<T, F: Fn(&T) -> bool>(
    node: &mut Node<T>,
    rect: &Rect,
    pred: &F,
    cfg: &RTreeConfig,
    orphans: &mut Vec<Entry<T>>,
) -> Option<T> {
    if node.is_leaf() {
        let pos = node.entries.iter().position(|e| match e {
            Entry::Leaf { rect: r, item } => r == rect && pred(item),
            Entry::Node { .. } => false,
        })?;
        match node.entries.swap_remove(pos) {
            Entry::Leaf { item, .. } => return Some(item),
            Entry::Node { .. } => unreachable!(),
        }
    }
    let mut found: Option<T> = None;
    let mut child_idx = None;
    for i in 0..node.entries.len() {
        let intersects = node.entries[i].rect().intersects(rect);
        if !intersects {
            continue;
        }
        let result = {
            let child = match &mut node.entries[i] {
                Entry::Node { child, .. } => child,
                Entry::Leaf { .. } => unreachable!("leaf entry in internal node"),
            };
            delete_rec(child, rect, pred, cfg, orphans)
        };
        if let Some(item) = result {
            found = Some(item);
            child_idx = Some(i);
            break;
        }
    }
    let item = found?;
    let i = child_idx.expect("index recorded with item");
    let underfull = match &node.entries[i] {
        Entry::Node { child, .. } => child.entries.len() < cfg.min_entries,
        Entry::Leaf { .. } => unreachable!(),
    };
    if underfull {
        // Condense: remove the child node and queue its entries for
        // reinsertion at their own levels.
        match node.entries.swap_remove(i) {
            Entry::Node { child, .. } => orphans.extend(child.entries),
            Entry::Leaf { .. } => unreachable!(),
        }
    } else {
        refresh_child_rect(node, i);
    }
    Some(item)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_tree(points: &[[f64; 2]], cfg: RTreeConfig) -> RStarTree<usize> {
        let mut t = RStarTree::new(cfg);
        for (i, p) in points.iter().enumerate() {
            t.insert_point(p, i);
        }
        t
    }

    fn grid(n: usize) -> Vec<[f64; 2]> {
        let mut pts = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                pts.push([i as f64, j as f64]);
            }
        }
        pts
    }

    #[test]
    fn empty_tree_properties() {
        let t: RStarTree<u32> = RStarTree::default();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        assert_eq!(t.iter().count(), 0);
        t.validate();
    }

    #[test]
    fn insert_grows_and_validates() {
        let pts = grid(20); // 400 points, forces several levels at fanout 8
        let t = point_tree(&pts, RTreeConfig::with_max_entries(8));
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 3);
        t.validate();
        assert_eq!(t.iter().count(), 400);
        let b = t.bounds().unwrap();
        assert_eq!(b.lo(), &[0.0, 0.0]);
        assert_eq!(b.hi(), &[19.0, 19.0]);
    }

    #[test]
    fn all_items_reachable_after_many_inserts() {
        let pts = grid(15);
        let t = point_tree(&pts, RTreeConfig::with_max_entries(6));
        let mut seen: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        seen.sort_unstable();
        let want: Vec<usize> = (0..225).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        for i in 0..50 {
            t.insert_point(&[1.0, 1.0], i);
        }
        assert_eq!(t.len(), 50);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mixed_dims_panic() {
        let mut t = RStarTree::default();
        t.insert_point(&[0.0, 0.0], 0usize);
        t.insert_point(&[0.0, 0.0, 0.0], 1usize);
    }

    #[test]
    fn grow_entry_widens_in_place() {
        let pts = grid(10);
        let mut t = point_tree(&pts, RTreeConfig::with_max_entries(5));
        t.validate();
        let old = Rect::from_point(&[3.0, 4.0]);
        // Widen item 34's degenerate rectangle to a box reaching outside
        // the original grid: same entry count, wider bounds, invariants
        // intact, and the widened region finds the (replaced) payload.
        let grown = Rect::new(vec![3.0, 4.0], vec![25.0, 25.0]);
        assert!(t.grow_entry(&old, |&i| i == 34, grown.clone(), 734));
        assert_eq!(t.len(), 100);
        t.validate();
        let probe = Rect::from_point(&[25.0, 25.0]);
        let (hits, _) = t.search_collect(&probe);
        assert_eq!(hits, vec![&734]);
        // The old rectangle no longer identifies the entry, and a grow
        // with no match leaves the tree untouched.
        assert!(!t.grow_entry(&old, |&i| i == 34, grown.clone(), 0));
        assert!(!t.grow_entry(&grown, |&i| i == 999, grown.clone(), 0));
        assert_eq!(t.len(), 100);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "contain")]
    fn grow_entry_rejects_a_shrinking_rectangle() {
        let mut t = point_tree(&grid(4), RTreeConfig::with_max_entries(4));
        let old = Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]);
        t.grow_entry(&old, |_| true, Rect::from_point(&[1.0, 1.0]), 0);
    }

    #[test]
    fn remove_existing_item() {
        let pts = grid(10);
        let mut t = point_tree(&pts, RTreeConfig::with_max_entries(5));
        let target = Rect::from_point(&[3.0, 4.0]);
        let got = t.remove(&target, |&i| i == 34);
        assert_eq!(got, Some(34));
        assert_eq!(t.len(), 99);
        t.validate();
        // A second removal of the same item fails.
        assert_eq!(t.remove(&target, |&i| i == 34), None);
    }

    #[test]
    fn remove_all_items_in_random_order() {
        let pts = grid(8);
        let mut t = point_tree(&pts, RTreeConfig::with_max_entries(4));
        // Pseudo-shuffle of removal order.
        let mut order: Vec<usize> = (0..64).collect();
        order.sort_by_key(|&i| (i * 37) % 64);
        for idx in order {
            let p = pts[idx];
            let r = Rect::from_point(&p);
            assert_eq!(t.remove(&r, |&it| it == idx), Some(idx), "missing {idx}");
            t.validate();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn remove_nonexistent_returns_none() {
        let mut t = point_tree(&grid(4), RTreeConfig::with_max_entries(4));
        assert_eq!(t.remove(&Rect::from_point(&[99.0, 99.0]), |_| true), None);
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn reinsert_disabled_still_correct() {
        let pts = grid(12);
        let t = point_tree(&pts, RTreeConfig::with_max_entries(6).without_reinsert());
        assert_eq!(t.len(), 144);
        t.validate();
    }

    #[test]
    fn rect_items_supported() {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(4));
        for i in 0..30 {
            let x = (i % 6) as f64 * 2.0;
            let y = (i / 6) as f64 * 2.0;
            t.insert(Rect::new(vec![x, y], vec![x + 1.5, y + 1.5]), i);
        }
        assert_eq!(t.len(), 30);
        t.validate();
    }

    #[test]
    fn clone_is_deep() {
        let mut a = point_tree(&grid(5), RTreeConfig::with_max_entries(4));
        let b = a.clone();
        a.remove(&Rect::from_point(&[0.0, 0.0]), |_| true);
        assert_eq!(a.len() + 1, b.len());
        b.validate();
    }
}
