//! File-backed pages and a pin-counted LRU buffer pool.
//!
//! A page file stores one R\*-tree node per fixed-size page, so a node
//! fetch is one positioned read — a *real* disk access, counted by the
//! pool rather than simulated by traversal arithmetic. The pool caches
//! *decoded* nodes: a pin hands out a shared handle to the decoded value
//! and keeps the frame resident until the pin is dropped, which lets a
//! traversal hold its current node while recursing into children.
//!
//! ## File layout
//!
//! ```text
//! offset 0            header (see PagedHeader), CRC-32 protected
//! offset PAGE_ALIGN   page 0
//! ...                 page i at PAGE_ALIGN + i * page_size
//! ```
//!
//! Every page slot is `payload_len u32 · crc32 u32 · payload · zero pad`;
//! the payload is the node encoding (level, entry count, rectangles,
//! payload/child words). A corrupted page surfaces as a typed
//! [`StoreError`] at pin time, never a panic.
//!
//! ## Pool semantics
//!
//! - `pin` returns the decoded node plus whether it was a **hit** (already
//!   resident) or a **miss** (read from the file). Cumulative hit/miss
//!   counters are the measured-I/O ground truth that `EXPLAIN ANALYZE`
//!   reports.
//! - Eviction is **segmented LRU** (2Q-style, scan-resistant) over
//!   *unpinned* frames only. A page enters the **probationary** segment
//!   on first admission and is promoted to the **protected** segment on
//!   its first re-hit; victims are taken from the probationary segment
//!   first, so a one-shot scan of many cold pages churns through
//!   probationary frames without flushing the re-referenced working set.
//!   The protected segment is capped at 3/4 of capacity; overflow
//!   demotes its LRU frame back to probationary (keeping its old stamp,
//!   so it is near the front of the eviction line). Frames marked
//!   **sticky** ([`BufferPool::mark_sticky`] — the tree root) are never
//!   eviction victims, though [`BufferPool::flush`] still drops them: a
//!   cold-cache reset must measure true cold I/O.
//! - When every frame is pinned the pool soft-overflows past
//!   `capacity_pages` (a recursive traversal through a capacity-1 pool
//!   must not deadlock); the surplus is trimmed back as pins are
//!   released.
//! - Reads and decodes happen under the pool lock, serializing I/O. That
//!   is deliberate: it keeps hit/miss accounting exact (no two threads
//!   racing to fault the same page and double-counting a miss).

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tsq_store::{crc32, StoreError, StoreResult};

/// Identifies one fixed-size page in a page file (zero-based slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {}", self.0)
    }
}

/// Fixed per-page prefix: payload length `u32` + CRC-32 `u32`.
pub(crate) const PAGE_PREFIX_BYTES: usize = 8;

/// One resident frame: the decoded node, its pin count, an LRU stamp,
/// and which SLRU segment it sits in.
#[derive(Debug)]
struct Frame<N> {
    value: Arc<N>,
    pins: usize,
    stamp: u64,
    /// False on first admission (probationary), true once re-hit.
    protected: bool,
}

#[derive(Debug)]
struct PoolInner<N> {
    file: File,
    page_size: usize,
    page_count: u64,
    frames: HashMap<u64, Frame<N>>,
    /// Monotone counter stamping every touch; smallest stamp = LRU victim.
    tick: u64,
    /// Frames currently in the protected segment.
    protected_count: usize,
    /// Page ids exempt from eviction (the root). Survives `flush` as a
    /// *policy* — re-admitted sticky pages are sticky again.
    sticky: HashSet<u64>,
    /// Reusable page-sized read buffer.
    buf: Vec<u8>,
}

/// A pin-counted LRU cache of decoded pages over one read-only page file.
///
/// Generic over the decoded value `N` so the pool itself stays a pure
/// caching layer; the tree supplies the node decoder at pin time.
#[derive(Debug)]
pub struct BufferPool<N> {
    inner: Mutex<PoolInner<N>>,
    capacity_pages: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<N> BufferPool<N> {
    /// Wraps an open page file. `capacity_pages` is clamped to at least 1;
    /// pass `usize::MAX` for an effectively unbounded pool.
    pub fn new(file: File, page_size: usize, page_count: u64, capacity_pages: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                file,
                page_size,
                page_count,
                frames: HashMap::new(),
                tick: 0,
                protected_count: 0,
                sticky: HashSet::new(),
                buf: Vec::new(),
            }),
            capacity_pages: capacity_pages.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Protected-segment cap: 3/4 of capacity, never below 1. The
    /// remaining quarter stays probationary churn room, so a scan always
    /// has somewhere to land without touching the hot set.
    fn protected_cap(&self) -> usize {
        self.capacity_pages - self.capacity_pages / 4
    }

    /// Exempts `id` from eviction — used for the tree root, which every
    /// traversal touches first and must never fault on a warm pool. The
    /// exemption is a policy on the page id, not the frame: it applies to
    /// current and future residency, and survives [`BufferPool::flush`]
    /// (which still drops the frame itself — a cold reset re-reads the
    /// root once, then it sticks again).
    pub fn mark_sticky(&self, id: PageId) {
        self.lock().sticky.insert(id.0);
    }

    /// Cumulative pin hits (fetches served from a resident frame).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative pin misses (fetches that read the file). This is the
    /// measured disk-access count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages resident right now.
    pub fn resident_pages(&self) -> usize {
        self.lock().frames.len()
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner<N>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pins a page, decoding it on a miss with `decode` (called on the
    /// exact payload bytes, checksum already verified). Returns the pin
    /// guard and whether the fetch was a hit.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the read fails, [`StoreError::Corrupt`] /
    /// [`StoreError::ChecksumMismatch`] for a malformed page, plus
    /// whatever `decode` rejects.
    pub fn pin<F>(&self, id: PageId, decode: F) -> StoreResult<(PagePin<'_, N>, bool)>
    where
        F: FnOnce(&[u8]) -> StoreResult<N>,
    {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let resident = if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.pins += 1;
            frame.stamp = tick;
            let promoted = !frame.protected;
            frame.protected = true;
            Some((Arc::clone(&frame.value), promoted))
        } else {
            None
        };
        if let Some((value, promoted)) = resident {
            if promoted {
                // Re-hit: probationary -> protected. If the protected
                // segment overflows, its LRU member drops back to
                // probationary (old stamp kept, so it is next in the
                // eviction line).
                inner.protected_count += 1;
                if inner.protected_count > self.protected_cap() {
                    inner.demote_lru_protected();
                }
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((
                PagePin {
                    pool: self,
                    id,
                    value,
                },
                true,
            ));
        }
        let value = {
            let payload = inner.read_page(id)?;
            Arc::new(decode(payload)?)
        };
        // Make room: evict unpinned frames (probationary first);
        // soft-overflow when nothing is evictable (trimmed in `unpin`).
        while inner.frames.len() >= self.capacity_pages {
            if !inner.evict_one() {
                break;
            }
        }
        inner.frames.insert(
            id.0,
            Frame {
                value: Arc::clone(&value),
                pins: 1,
                stamp: tick,
                protected: false,
            },
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((
            PagePin {
                pool: self,
                id,
                value,
            },
            false,
        ))
    }

    /// Releases one pin on `id` and trims any soft overflow.
    fn unpin(&self, id: PageId) {
        let mut inner = self.lock();
        if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.pins = frame.pins.saturating_sub(1);
        }
        while inner.frames.len() > self.capacity_pages {
            if !inner.evict_one() {
                break;
            }
        }
    }

    /// Drops every unpinned frame, returning how many were evicted. The
    /// pool is read-only, so there is nothing to write back — `flush` is
    /// the cold-cache reset the benchmarks use.
    pub fn flush(&self) -> usize {
        let mut inner = self.lock();
        let before = inner.frames.len();
        inner.frames.retain(|_, f| f.pins > 0);
        inner.protected_count = inner.frames.values().filter(|f| f.protected).count();
        before - inner.frames.len()
    }
}

impl<N> PoolInner<N> {
    /// LRU evictable frame within one segment: unpinned and not sticky.
    fn victim_in(&self, protected: bool) -> Option<u64> {
        self.frames
            .iter()
            .filter(|(k, f)| f.pins == 0 && f.protected == protected && !self.sticky.contains(*k))
            .min_by_key(|(_, f)| f.stamp)
            .map(|(&k, _)| k)
    }

    /// Removes one evictable frame — probationary LRU first, protected
    /// LRU only when no probationary frame can go. Returns `false` when
    /// every frame is pinned or sticky (the soft-overflow case).
    fn evict_one(&mut self) -> bool {
        let Some(victim) = self.victim_in(false).or_else(|| self.victim_in(true)) else {
            return false;
        };
        if let Some(frame) = self.frames.remove(&victim) {
            if frame.protected {
                self.protected_count -= 1;
            }
        }
        true
    }

    /// Reclassifies the protected segment's LRU frame as probationary,
    /// keeping its stamp. Called only when the segment exceeds its cap,
    /// which implies at least two members — the just-promoted frame
    /// carries the newest stamp and is never the one picked.
    fn demote_lru_protected(&mut self) {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.protected)
            .min_by_key(|(_, f)| f.stamp)
            .map(|(&k, _)| k);
        if let Some(k) = victim {
            if let Some(frame) = self.frames.get_mut(&k) {
                frame.protected = false;
                self.protected_count -= 1;
            }
        }
    }

    /// Reads and verifies one page, returning its payload slice (borrowed
    /// from the reusable buffer).
    fn read_page(&mut self, id: PageId) -> StoreResult<&[u8]> {
        if id.0 >= self.page_count {
            return Err(StoreError::corrupt(format!(
                "{id} out of range (file holds {} page(s))",
                self.page_count
            )));
        }
        let offset = crate::config::PAGE_ALIGN as u64 + id.0 * self.page_size as u64;
        self.buf.resize(self.page_size, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut self.buf)?;
        let payload_len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        if payload_len > self.page_size - PAGE_PREFIX_BYTES {
            return Err(StoreError::corrupt(format!(
                "{id} declares a {payload_len}-byte payload in a {}-byte page",
                self.page_size
            )));
        }
        let stored = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        let payload = &self.buf[PAGE_PREFIX_BYTES..PAGE_PREFIX_BYTES + payload_len];
        let computed = crc32(payload);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        Ok(payload)
    }
}

/// A pinned, decoded page. Dereferences to the node; dropping it releases
/// the pin, making the frame evictable again.
#[derive(Debug)]
pub struct PagePin<'p, N> {
    pool: &'p BufferPool<N>,
    id: PageId,
    value: Arc<N>,
}

impl<N> Deref for PagePin<'_, N> {
    type Target = N;

    fn deref(&self) -> &N {
        &self.value
    }
}

impl<N> Drop for PagePin<'_, N> {
    fn drop(&mut self) {
        self.pool.unpin(self.id);
    }
}

/// Serializes one page slot: length prefix, CRC, payload, zero padding.
///
/// # Errors
/// [`StoreError::Corrupt`] when the payload cannot fit the page.
pub(crate) fn seal_page(payload: &[u8], page_size: usize) -> StoreResult<Vec<u8>> {
    if payload.len() > page_size - PAGE_PREFIX_BYTES {
        return Err(StoreError::corrupt(format!(
            "node payload of {} byte(s) exceeds the {page_size}-byte page",
            payload.len()
        )));
    }
    let mut page = vec![0u8; page_size];
    page[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    page[PAGE_PREFIX_BYTES..PAGE_PREFIX_BYTES + payload.len()].copy_from_slice(payload);
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn pool_over(pages: &[&[u8]], capacity: usize) -> BufferPool<String> {
        let dir = std::env::temp_dir().join(format!(
            "tsq-pool-test-{}-{}",
            std::process::id(),
            pages.len()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("p{capacity}.pages"));
        let page_size = crate::config::PAGE_ALIGN;
        let mut f = File::create(&path).unwrap();
        f.write_all(&vec![0u8; crate::config::PAGE_ALIGN]).unwrap();
        for p in pages {
            f.write_all(&seal_page(p, page_size).unwrap()).unwrap();
        }
        f.flush().unwrap();
        BufferPool::new(
            File::open(&path).unwrap(),
            page_size,
            pages.len() as u64,
            capacity,
        )
    }

    fn decode(bytes: &[u8]) -> StoreResult<String> {
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }

    #[test]
    fn hit_miss_accounting_is_exact() {
        let pool = pool_over(&[b"alpha", b"beta", b"gamma"], 8);
        let (p0, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(!hit);
        assert_eq!(&*p0, "alpha");
        drop(p0);
        let (p0, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(hit);
        drop(p0);
        let (p1, hit) = pool.pin(PageId(1), decode).unwrap();
        assert!(!hit);
        drop(p1);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_unpinned() {
        let pool = pool_over(&[b"a", b"b", b"c"], 2);
        drop(pool.pin(PageId(0), decode).unwrap());
        drop(pool.pin(PageId(1), decode).unwrap());
        // Touch page 0 so page 1 becomes the LRU victim.
        drop(pool.pin(PageId(0), decode).unwrap());
        drop(pool.pin(PageId(2), decode).unwrap()); // evicts 1
        assert_eq!(pool.resident_pages(), 2);
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(hit, "page 0 was recently used and must survive");
        let (_, hit) = pool.pin(PageId(1), decode).unwrap();
        assert!(!hit, "page 1 was the LRU victim");
    }

    #[test]
    fn warm_pool_sized_working_set_repeats_with_zero_misses() {
        // A working set that exactly fits the pool: after the cold pass,
        // repeat probes in any order must never fault again.
        let pool = pool_over(&[b"a", b"b", b"c", b"d"], 4);
        for i in 0..4 {
            drop(pool.pin(PageId(i), decode).unwrap());
        }
        assert_eq!(pool.misses(), 4);
        for round in 0..5 {
            for i in 0..4 {
                let id = if round % 2 == 0 { i } else { 3 - i };
                drop(pool.pin(PageId(id), decode).unwrap());
            }
        }
        assert_eq!(pool.misses(), 4, "warm repeat probes must take zero misses");
        assert_eq!(pool.hits(), 20);
    }

    #[test]
    fn protected_working_set_survives_a_one_pass_scan() {
        // Scan resistance: pages 0..4 are re-referenced (promoted to the
        // protected segment); a one-shot scan of 12 cold pages — larger
        // than the whole pool — must churn through probationary frames
        // only and leave the working set resident.
        let pages: Vec<Vec<u8>> = (0..16u8).map(|i| vec![b'a' + i]).collect();
        let refs: Vec<&[u8]> = pages.iter().map(Vec::as_slice).collect();
        let pool = pool_over(&refs, 8);
        for _ in 0..2 {
            for i in 0..4 {
                drop(pool.pin(PageId(i), decode).unwrap());
            }
        }
        for i in 4..16 {
            drop(pool.pin(PageId(i), decode).unwrap());
        }
        let before = pool.misses();
        for i in 0..4 {
            let (_, hit) = pool.pin(PageId(i), decode).unwrap();
            assert!(hit, "page {i} was protected and must survive the scan");
        }
        assert_eq!(pool.misses(), before);
    }

    #[test]
    fn sticky_pages_are_never_eviction_victims() {
        let pool = pool_over(&[b"a", b"b", b"c", b"d", b"e", b"f"], 2);
        pool.mark_sticky(PageId(0));
        drop(pool.pin(PageId(0), decode).unwrap());
        // Churn far past capacity: page 0 is untouched the whole time but
        // must stay resident because it is sticky.
        for i in 1..6 {
            drop(pool.pin(PageId(i), decode).unwrap());
        }
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(hit, "sticky page must survive unbounded churn");
        // `flush` is a cold reset and does drop it — but stickiness is a
        // policy on the id, so the re-admitted frame is sticky again.
        pool.flush();
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(!hit, "flush drops sticky frames too");
        for i in 1..6 {
            drop(pool.pin(PageId(i), decode).unwrap());
        }
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(hit, "stickiness survives the flush");
    }

    #[test]
    fn protected_overflow_demotes_lru_back_to_probationary() {
        // Capacity 4 => protected cap 3. Promoting a fourth page demotes
        // the protected LRU (page 0) back to probationary, making it the
        // next eviction victim.
        let pool = pool_over(&[b"a", b"b", b"c", b"d", b"e"], 4);
        for i in 0..4 {
            drop(pool.pin(PageId(i), decode).unwrap());
        }
        for i in 0..4 {
            drop(pool.pin(PageId(i), decode).unwrap()); // promote all four
        }
        drop(pool.pin(PageId(4), decode).unwrap()); // evicts demoted page 0
        let (_, hit) = pool.pin(PageId(1), decode).unwrap();
        assert!(hit, "page 1 stayed protected");
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(!hit, "page 0 was demoted and then evicted");
    }

    #[test]
    fn pinned_frames_survive_eviction_via_soft_overflow() {
        let pool = pool_over(&[b"a", b"b", b"c"], 1);
        let (pin_a, _) = pool.pin(PageId(0), decode).unwrap();
        // Capacity 1, but page 0 is pinned: pinning 1 and 2 must still
        // work (soft overflow), and page 0 must stay resident.
        let (pin_b, _) = pool.pin(PageId(1), decode).unwrap();
        assert_eq!(&*pin_a, "a");
        assert_eq!(&*pin_b, "b");
        assert!(pool.resident_pages() >= 2);
        drop(pin_b);
        drop(pin_a);
        // Pins released: the pool trims back to capacity.
        drop(pool.pin(PageId(2), decode).unwrap());
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn flush_drops_only_unpinned() {
        let pool = pool_over(&[b"a", b"b"], 4);
        let (pin, _) = pool.pin(PageId(0), decode).unwrap();
        drop(pool.pin(PageId(1), decode).unwrap());
        assert_eq!(pool.flush(), 1);
        assert_eq!(pool.resident_pages(), 1);
        drop(pin);
        assert_eq!(pool.flush(), 1);
        assert_eq!(pool.resident_pages(), 0);
        // After a flush the next fetch is a miss again.
        let (_, hit) = pool.pin(PageId(0), decode).unwrap();
        assert!(!hit);
    }

    #[test]
    fn corrupt_pages_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("tsq-pool-corrupt-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.pages");
        let page_size = crate::config::PAGE_ALIGN;
        let mut page = seal_page(b"payload", page_size).unwrap();
        page[PAGE_PREFIX_BYTES] ^= 0xff; // flip a payload bit
        let mut f = File::create(&path).unwrap();
        f.write_all(&vec![0u8; crate::config::PAGE_ALIGN]).unwrap();
        f.write_all(&page).unwrap();
        f.flush().unwrap();
        let pool: BufferPool<String> = BufferPool::new(File::open(&path).unwrap(), page_size, 1, 4);
        assert!(matches!(
            pool.pin(PageId(0), decode),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Out-of-range page ids are refused before any read.
        assert!(matches!(
            pool.pin(PageId(9), decode),
            Err(StoreError::Corrupt { .. })
        ));
        assert_eq!(pool.hits() + pool.misses(), 0);
    }

    #[test]
    fn oversized_payload_is_rejected_at_seal_time() {
        let too_big = vec![0u8; crate::config::PAGE_ALIGN];
        assert!(matches!(
            seal_page(&too_big, crate::config::PAGE_ALIGN),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
