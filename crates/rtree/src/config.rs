//! Tree tuning parameters and the page geometry they must fit.

/// Page files round every node up to a multiple of this (a disk sector /
/// filesystem block), so a node read never straddles an unaligned
/// boundary.
pub const PAGE_ALIGN: usize = 4096;

/// Hard ceiling on one page (4 MiB). A node larger than this cannot be
/// stored, which in turn bounds the fan-out a snapshot or page file may
/// declare.
pub const MAX_PAGE_BYTES: usize = 1 << 22;

/// Fixed per-page header: payload length `u32`, CRC-32 `u32`, node level
/// `u32`, entry count `u32`.
pub const PAGE_HEADER_BYTES: usize = 16;

/// Smallest possible serialized entry: a 1-dimensional rectangle
/// (`lo f64` + `hi f64`) plus an 8-byte payload or child pointer.
pub const MIN_ENTRY_BYTES: usize = 24;

/// Maximum fan-out any stored tree may declare, derived from the page
/// geometry: the most 1-dimensional entries that fit in the largest
/// page. Persist and page readers reject anything above this with a
/// typed error instead of allocating for it.
pub const MAX_FANOUT: usize = (MAX_PAGE_BYTES - PAGE_HEADER_BYTES) / MIN_ENTRY_BYTES;

/// Tuning parameters of an [`crate::RStarTree`].
///
/// The defaults correspond to a simulated 4 KiB disk page holding
/// 6-dimensional `f64` rectangles plus a child pointer (~100 bytes/entry →
/// fanout ≈ 40; we use 32 to leave header room), with the R\*-tree paper's
/// recommended 40% minimum fill and 30% forced-reinsert fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). Must be at least 4.
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`). Must satisfy
    /// `1 <= m <= M/2`.
    pub min_entries: usize,
    /// Number of entries removed and re-inserted on the first overflow of
    /// each level per insertion (`p`, the R\*-tree forced reinsert). Zero
    /// disables forced reinsertion (degrading to a quadratic-style split-only
    /// R-tree) — exposed for the ablation benchmarks.
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Config with the given fanout, deriving `m = 40%` and `p = 30%` as the
    /// R\*-tree paper recommends.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Disables forced reinsertion (ablation).
    pub fn without_reinsert(mut self) -> Self {
        self.reinsert_count = 0;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be at least 4");
        assert!(
            self.min_entries >= 1 && self.min_entries <= self.max_entries / 2,
            "min_entries must be in 1..=max_entries/2"
        );
        assert!(
            self.reinsert_count < self.max_entries,
            "reinsert_count must be below max_entries"
        );
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::with_max_entries(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RTreeConfig::default().validate();
    }

    #[test]
    fn derived_fractions() {
        let c = RTreeConfig::with_max_entries(10);
        assert_eq!(c.min_entries, 4);
        assert_eq!(c.reinsert_count, 3);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        let _ = RTreeConfig::with_max_entries(3);
    }

    #[test]
    fn without_reinsert() {
        let c = RTreeConfig::default().without_reinsert();
        assert_eq!(c.reinsert_count, 0);
        c.validate();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn derived_fanout_cap_exceeds_old_hard_coded_cap() {
        // The cap used to be a hard-coded `1 << 16`; deriving it from the
        // page geometry must not shrink it (that would reject previously
        // valid snapshots) and should in fact admit larger configured
        // fan-outs.
        assert!(MAX_FANOUT > 1 << 16, "MAX_FANOUT = {MAX_FANOUT}");
        // But it still rejects absurd values like u32::MAX.
        assert!(MAX_FANOUT < u32::MAX as usize);
    }
}
