//! Tree tuning parameters.

/// Tuning parameters of an [`crate::RStarTree`].
///
/// The defaults correspond to a simulated 4 KiB disk page holding
/// 6-dimensional `f64` rectangles plus a child pointer (~100 bytes/entry →
/// fanout ≈ 40; we use 32 to leave header room), with the R\*-tree paper's
/// recommended 40% minimum fill and 30% forced-reinsert fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). Must be at least 4.
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`). Must satisfy
    /// `1 <= m <= M/2`.
    pub min_entries: usize,
    /// Number of entries removed and re-inserted on the first overflow of
    /// each level per insertion (`p`, the R\*-tree forced reinsert). Zero
    /// disables forced reinsertion (degrading to a quadratic-style split-only
    /// R-tree) — exposed for the ablation benchmarks.
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Config with the given fanout, deriving `m = 40%` and `p = 30%` as the
    /// R\*-tree paper recommends.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Disables forced reinsertion (ablation).
    pub fn without_reinsert(mut self) -> Self {
        self.reinsert_count = 0;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be at least 4");
        assert!(
            self.min_entries >= 1 && self.min_entries <= self.max_entries / 2,
            "min_entries must be in 1..=max_entries/2"
        );
        assert!(
            self.reinsert_count < self.max_entries,
            "reinsert_count must be below max_entries"
        );
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::with_max_entries(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RTreeConfig::default().validate();
    }

    #[test]
    fn derived_fractions() {
        let c = RTreeConfig::with_max_entries(10);
        assert_eq!(c.min_entries, 4);
        assert_eq!(c.reinsert_count, 3);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        let _ = RTreeConfig::with_max_entries(3);
    }

    #[test]
    fn without_reinsert() {
        let c = RTreeConfig::default().without_reinsert();
        assert_eq!(c.reinsert_count, 0);
        c.validate();
    }
}
