//! Range search with a pluggable rectangle test — the hook that makes
//! Algorithm 1/2 of the paper possible.
//!
//! [`RStarTree::search_with`] hands every *stored* MBR to a caller-supplied
//! acceptance closure. `tsq-core` implements the paper's transformed search
//! by applying a safe transformation `T` to the MBR inside that closure and
//! testing the result against the (transformed-space) search rectangle:
//! the transformed index `I' = T(I)` is materialized lazily, node by node,
//! during traversal, with no extra disk overhead.

use tsq_store::StoreResult;

use crate::node::{Entry, Node};
use crate::page::PageId;
use crate::paged::{PagedEntry, PagedTree};
use crate::rect::Rect;
use crate::stats::SearchStats;
use crate::tree::RStarTree;

impl<T> RStarTree<T> {
    /// Generic guided traversal.
    ///
    /// `accept` is called on the bounding rectangle of every entry reached
    /// (internal MBRs *and* leaf rectangles); subtrees whose MBR is rejected
    /// are pruned. Accepted leaf entries are passed to `on_candidate`.
    ///
    /// Returns per-query access statistics; one visited node models one disk
    /// access.
    pub fn search_with<'a, A, C>(&'a self, mut accept: A, mut on_candidate: C) -> SearchStats
    where
        A: FnMut(&Rect) -> bool,
        C: FnMut(&'a Rect, &'a T),
    {
        let mut stats = SearchStats::default();
        if self.is_empty() {
            return stats;
        }
        self.visit_node(root(self), &mut accept, &mut on_candidate, &mut stats);
        stats
    }

    fn visit_node<'a, A, C>(
        &'a self,
        node: &'a Node<T>,
        accept: &mut A,
        on_candidate: &mut C,
        stats: &mut SearchStats,
    ) where
        A: FnMut(&Rect) -> bool,
        C: FnMut(&'a Rect, &'a T),
    {
        stats.nodes_visited += 1;
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for entry in &node.entries {
                stats.entries_tested += 1;
                if let Entry::Leaf { rect, item } = entry {
                    if accept(rect) {
                        stats.candidates += 1;
                        on_candidate(rect, item);
                    }
                }
            }
        } else {
            for entry in &node.entries {
                stats.entries_tested += 1;
                if let Entry::Node { rect, child } = entry {
                    if accept(rect) {
                        self.visit_node(child, accept, on_candidate, stats);
                    }
                }
            }
        }
    }

    /// Window query collecting matches into a vector.
    pub fn search_collect(&self, query: &Rect) -> (Vec<&T>, SearchStats) {
        let mut out = Vec::new();
        let stats = self.search(query, |_, item| out.push(item));
        (out, stats)
    }
}

impl<T: Sync> RStarTree<T> {
    /// Parallel variant of [`RStarTree::search_with`]: the root's subtrees
    /// are partitioned across up to `threads` worker threads (the filter
    /// step of a filter-and-refine query fans out per subtree).
    ///
    /// `accept` must be a pure predicate (`Fn`, not `FnMut`): it is called
    /// concurrently from several workers. Candidates come back in exactly
    /// the sequential traversal's order — workers own contiguous runs of
    /// root entries and results are concatenated in root-entry order — and
    /// the returned [`SearchStats`] totals equal the sequential ones, so
    /// callers can assert byte-identical answers regardless of `threads`.
    pub fn search_with_parallel<'a, A>(
        &'a self,
        accept: A,
        threads: usize,
    ) -> (Vec<(&'a Rect, &'a T)>, SearchStats)
    where
        A: Fn(&Rect) -> bool + Sync,
    {
        let sequential = |accept: &A| {
            let mut out = Vec::new();
            let stats = self.search_with(|r| accept(r), |r, item| out.push((r, item)));
            (out, stats)
        };
        if threads <= 1 || self.is_empty() || self.root.is_leaf() {
            return sequential(&accept);
        }
        let mut stats = SearchStats {
            nodes_visited: 1, // the root itself
            ..SearchStats::default()
        };
        // Test root entries in order (the sequential traversal's first
        // step), keeping the accepted subtrees for the fan-out.
        let mut subtrees: Vec<&'a Node<T>> = Vec::new();
        for entry in &self.root.entries {
            stats.entries_tested += 1;
            if let Entry::Node { rect, child } = entry {
                if accept(rect) {
                    subtrees.push(child);
                }
            }
        }
        // Each worker runs the very same sequential visitor over its
        // subtree — there is exactly one traversal implementation, so the
        // byte-identical answers/stats contract cannot drift — wrapping
        // the shared `Fn` predicate in a worker-local `FnMut` closure.
        let accept = &accept;
        let per_subtree = crate::par::parallel_map(threads, subtrees, |node| {
            let mut out = Vec::new();
            let mut local = SearchStats::default();
            self.visit_node(
                node,
                &mut |r| accept(r),
                &mut |r, item| out.push((r, item)),
                &mut local,
            );
            (out, local)
        });
        let mut out = Vec::new();
        for (candidates, local) in per_subtree {
            out.extend(candidates);
            stats.absorb(&local);
        }
        (out, stats)
    }
}

impl<T> RStarTree<T> {
    /// Classic window query: all items whose stored rectangle intersects
    /// `query`.
    pub fn search<'a, C>(&'a self, query: &Rect, on_candidate: C) -> SearchStats
    where
        C: FnMut(&'a Rect, &'a T),
    {
        self.search_with(|r| r.intersects(query), on_candidate)
    }
}

impl PagedTree {
    /// Paged twin of [`RStarTree::search_with`]: the identical guided
    /// traversal, with every node fetch going through the buffer pool.
    /// The returned stats match the in-memory tree's counter for counter
    /// and additionally carry measured `pool_hits`/`pool_misses`.
    ///
    /// # Errors
    /// Typed [`tsq_store::StoreError`]s when a page cannot be read or
    /// decodes as corrupt.
    pub fn search_with<A, C>(&self, mut accept: A, mut on_candidate: C) -> StoreResult<SearchStats>
    where
        A: FnMut(&Rect) -> bool,
        C: FnMut(&Rect, u64),
    {
        let mut stats = SearchStats::default();
        if self.is_empty() {
            return Ok(stats);
        }
        self.visit_page(
            self.root(),
            self.root_level(),
            &mut accept,
            &mut on_candidate,
            &mut stats,
        )?;
        Ok(stats)
    }

    fn visit_page<A, C>(
        &self,
        id: PageId,
        level: u32,
        accept: &mut A,
        on_candidate: &mut C,
        stats: &mut SearchStats,
    ) -> StoreResult<()>
    where
        A: FnMut(&Rect) -> bool,
        C: FnMut(&Rect, u64),
    {
        // The pin stays alive while children are visited: the parent page
        // cannot be evicted mid-recursion.
        let node = self.fetch(id, level, stats)?;
        stats.nodes_visited += 1;
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for entry in &node.entries {
                stats.entries_tested += 1;
                if let PagedEntry::Leaf { rect, item } = entry {
                    if accept(rect) {
                        stats.candidates += 1;
                        on_candidate(rect, *item);
                    }
                }
            }
        } else {
            for entry in &node.entries {
                stats.entries_tested += 1;
                if let PagedEntry::Child { rect, page } = entry {
                    if accept(rect) {
                        self.visit_page(*page, level - 1, accept, on_candidate, stats)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Paged twin of [`RStarTree::search`]: plain window query.
    ///
    /// # Errors
    /// Same as [`PagedTree::search_with`].
    pub fn search<C>(&self, query: &Rect, on_candidate: C) -> StoreResult<SearchStats>
    where
        C: FnMut(&Rect, u64),
    {
        self.search_with(|r| r.intersects(query), on_candidate)
    }
}

fn root<T>(tree: &RStarTree<T>) -> &Node<T> {
    &tree.root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn grid_tree(n: usize, fanout: usize) -> RStarTree<(usize, usize)> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(fanout));
        for i in 0..n {
            for j in 0..n {
                t.insert_point(&[i as f64, j as f64], (i, j));
            }
        }
        t
    }

    #[test]
    fn window_query_matches_filter() {
        let t = grid_tree(20, 8);
        let q = Rect::new(vec![3.5, 3.5], vec![7.0, 10.0]);
        let (mut got, stats) = t.search_collect(&q);
        got.sort_unstable();
        let mut want = Vec::new();
        for i in 4..=7 {
            for j in 4..=10 {
                want.push((i, j));
            }
        }
        let got: Vec<(usize, usize)> = got.into_iter().copied().collect();
        assert_eq!(got, want);
        assert!(stats.nodes_visited > 0);
        assert!(stats.nodes_visited < 400, "should prune most of the tree");
    }

    #[test]
    fn empty_query_region() {
        let t = grid_tree(10, 6);
        let q = Rect::new(vec![100.0, 100.0], vec![101.0, 101.0]);
        let (got, _) = t.search_collect(&q);
        assert!(got.is_empty());
    }

    #[test]
    fn whole_space_query_returns_everything() {
        let t = grid_tree(12, 6);
        let q = Rect::new(vec![-1.0, -1.0], vec![12.0, 12.0]);
        let (got, stats) = t.search_collect(&q);
        assert_eq!(got.len(), 144);
        // Every node must be touched.
        assert_eq!(stats.candidates, 144);
    }

    #[test]
    fn search_on_empty_tree() {
        let t: RStarTree<u8> = RStarTree::default();
        let q = Rect::new(vec![0.0], vec![1.0]);
        let (got, stats) = t.search_collect(&q);
        assert!(got.is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn search_with_affine_transform_hook() {
        // Emulates Algorithm 2: the tree stores original points; the query
        // is posed against the *transformed* data T(x) = 2x + 1, by
        // transforming every stored MBR during traversal.
        let t = grid_tree(10, 6);
        let a = [2.0, 2.0];
        let b = [1.0, 1.0];
        // Query window in transformed space: transformed points land on
        // odd coordinates 1,3,..,19.
        let q = Rect::new(vec![4.5, 4.5], vec![9.5, 9.5]);
        let mut got: Vec<(usize, usize)> = Vec::new();
        t.search_with(
            |r| r.affine(&a, &b).intersects(&q),
            |_, &item| got.push(item),
        );
        got.sort_unstable();
        // 2i+1 in [4.5, 9.5] -> i in {2, 3, 4}
        let mut want = Vec::new();
        for i in 2..=4 {
            for j in 2..=4 {
                want.push((i, j));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_search_identical_to_sequential() {
        let t = grid_tree(25, 8); // 625 points, several levels
        for q in [
            Rect::new(vec![3.5, 3.5], vec![9.0, 14.0]),
            Rect::new(vec![-1.0, -1.0], vec![30.0, 30.0]), // everything
            Rect::new(vec![100.0, 100.0], vec![101.0, 101.0]), // nothing
        ] {
            let mut seq: Vec<(&Rect, &(usize, usize))> = Vec::new();
            let seq_stats = t.search_with(|r| r.intersects(&q), |r, it| seq.push((r, it)));
            for threads in [1usize, 2, 3, 8] {
                let (par, par_stats) = t.search_with_parallel(|r| r.intersects(&q), threads);
                assert_eq!(par, seq, "threads = {threads}");
                assert_eq!(par_stats, seq_stats, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_search_on_small_and_empty_trees() {
        let empty: RStarTree<u8> = RStarTree::default();
        let q = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(empty
            .search_with_parallel(|r| r.intersects(&q), 4)
            .0
            .is_empty());
        // Root-only leaf tree takes the sequential fallback.
        let mut small = RStarTree::new(RTreeConfig::with_max_entries(8));
        for i in 0..5 {
            small.insert_point(&[i as f64, 0.0], i);
        }
        let (got, stats) = small.search_with_parallel(|r| r.intersects(&q), 4);
        assert_eq!(got.len(), 2); // x = 0, 1
        assert_eq!(stats.nodes_visited, 1);
    }

    #[test]
    fn transformed_search_same_accesses_as_plain_for_identity() {
        // The paper's Figure 8/9 claim: with the identity transformation the
        // number of disk accesses equals the plain query's.
        let t = grid_tree(16, 8);
        let q = Rect::new(vec![2.2, 2.2], vec![8.8, 8.8]);
        let plain = t.search(&q, |_, _| {});
        let identity = t.search_with(
            |r| r.affine(&[1.0, 1.0], &[0.0, 0.0]).intersects(&q),
            |_, _| {},
        );
        assert_eq!(plain.nodes_visited, identity.nodes_visited);
        assert_eq!(plain.candidates, identity.candidates);
    }
}
