//! Snapshot persistence: writing an R\*-tree's node structure to the
//! `tsq-store` binary format and restoring it **byte-identically** — the
//! restored tree has the same nodes, the same MBRs, the same entry order,
//! and therefore answers every query with the same results *and the same
//! traversal statistics* as the original. Nothing is rebuilt.
//!
//! ## Layout
//!
//! ```text
//! config     max_entries u32 · min_entries u32 · reinsert_count u32
//! len        u64
//! dims       present u8 · dims u64 (when present)
//! root       node
//! node       level u32 (root only) · entry-count u32 · entries
//! entry      rect (lo f64×dims, hi f64×dims) · payload | child node
//! ```
//!
//! A node's entry kind is implied by its level (leaves hold payloads,
//! internal nodes hold children), and a child's level is implied by its
//! parent's, so neither is stored per entry. Payload encoding is delegated
//! to the caller via closures — the tree is generic over its item type.
//!
//! ## Restore-time validation
//!
//! Reading re-establishes every structural invariant `RStarTree::validate`
//! asserts, but with typed [`StoreError`]s instead of panics: fan-out
//! bounds, level continuity, leaf/internal entry homogeneity, stored MBRs
//! equal to recomputed MBRs (bitwise — `f64` encoding is exact), finite
//! non-inverted rectangle bounds, and a leaf count matching the recorded
//! length. Corrupt input past the frame checksum therefore still cannot
//! panic, allocate absurdly, or produce a tree that later misbehaves.

use tsq_store::{Decoder, Encoder, StoreError, StoreResult};

use crate::config::{RTreeConfig, MAX_FANOUT};
use crate::node::{Entry, Node};
use crate::rect::Rect;
use crate::tree::RStarTree;

/// Levels are bounded to keep recursion depth trivially safe: a tree of
/// height 64 with fan-out ≥ 2 would hold more items than a `u64` counts.
pub(crate) const MAX_LEVEL: u32 = 64;

impl<T> RStarTree<T> {
    /// Serializes the tree into `enc`, delegating payload encoding to
    /// `write_item`. The byte stream is canonical: equal trees (same
    /// structure, same payload encoding) produce equal bytes.
    pub fn write_to<F: FnMut(&mut Encoder, &T)>(&self, enc: &mut Encoder, write_item: &mut F) {
        write_config(enc, &self.config);
        enc.usize(self.len());
        match self.dims() {
            Some(d) => {
                enc.u8(1);
                enc.usize(d);
            }
            None => enc.u8(0),
        }
        enc.u32(self.root.level);
        write_node(enc, &self.root, write_item);
    }

    /// Restores a tree previously written by [`RStarTree::write_to`],
    /// delegating payload decoding to `read_item`.
    ///
    /// # Errors
    /// [`StoreError::Truncated`] when bytes run out and
    /// [`StoreError::Corrupt`] for any structural violation; payload
    /// decoding errors propagate unchanged.
    pub fn read_from<F: FnMut(&mut Decoder<'_>) -> StoreResult<T>>(
        dec: &mut Decoder<'_>,
        read_item: &mut F,
    ) -> StoreResult<Self> {
        let config = read_config(dec)?;
        let len = dec.usize("tree length")?;
        let dims = match dec.u8("tree dims flag")? {
            0 => None,
            1 => Some(dec.usize("tree dims")?),
            other => {
                return Err(StoreError::corrupt(format!("tree dims flag byte {other}")));
            }
        };
        let root_level = dec.u32("root level")?;
        if root_level >= MAX_LEVEL {
            return Err(StoreError::corrupt(format!(
                "root level {root_level} exceeds the maximum tree height {MAX_LEVEL}"
            )));
        }
        if len == 0 && (root_level != 0 || dims.is_some()) {
            return Err(StoreError::corrupt(
                "empty tree must have a level-0 root and no dimensionality",
            ));
        }
        if len > 0 && dims.is_none() {
            return Err(StoreError::corrupt("non-empty tree without dimensionality"));
        }
        let mut leaves = 0usize;
        let root = read_node(
            dec,
            root_level,
            true,
            &config,
            dims.unwrap_or(0),
            read_item,
            &mut leaves,
        )?;
        if len == 0 && !root.entries.is_empty() {
            return Err(StoreError::corrupt("empty tree with a populated root"));
        }
        if leaves != len {
            return Err(StoreError::corrupt(format!(
                "tree claims {len} item(s) but stores {leaves}"
            )));
        }
        let mut tree = RStarTree::new(config);
        tree.root = root;
        if let Some(d) = dims {
            tree.force_size(len, d);
        }
        Ok(tree)
    }
}

/// Writes R\*-tree tuning parameters (three `u32`s). The single config
/// codec shared by tree snapshots and the higher-level index
/// configurations in `tsq-core`.
pub fn write_config(enc: &mut Encoder, cfg: &RTreeConfig) {
    enc.u32(cfg.max_entries as u32);
    enc.u32(cfg.min_entries as u32);
    enc.u32(cfg.reinsert_count as u32);
}

/// Reads R\*-tree tuning parameters, enforcing the same bounds
/// `RTreeConfig::validate` asserts — but as typed errors, not panics.
///
/// # Errors
/// [`StoreError::Corrupt`] on out-of-range parameters.
pub fn read_config(dec: &mut Decoder<'_>) -> StoreResult<RTreeConfig> {
    let max_entries = dec.u32("rtree max_entries")? as usize;
    let min_entries = dec.u32("rtree min_entries")? as usize;
    let reinsert_count = dec.u32("rtree reinsert_count")? as usize;
    if !(4..=MAX_FANOUT).contains(&max_entries) {
        return Err(StoreError::corrupt(format!(
            "rtree max_entries {max_entries} outside 4..={MAX_FANOUT}"
        )));
    }
    if min_entries < 1 || min_entries > max_entries / 2 {
        return Err(StoreError::corrupt(format!(
            "rtree min_entries {min_entries} outside 1..={}",
            max_entries / 2
        )));
    }
    if reinsert_count >= max_entries {
        return Err(StoreError::corrupt(format!(
            "rtree reinsert_count {reinsert_count} not below max_entries {max_entries}"
        )));
    }
    Ok(RTreeConfig {
        max_entries,
        min_entries,
        reinsert_count,
    })
}

fn write_node<T, F: FnMut(&mut Encoder, &T)>(
    enc: &mut Encoder,
    node: &Node<T>,
    write_item: &mut F,
) {
    enc.u32(node.entries.len() as u32);
    for entry in &node.entries {
        write_rect(enc, entry.rect());
        match entry {
            Entry::Leaf { item, .. } => write_item(enc, item),
            Entry::Node { child, .. } => write_node(enc, child, write_item),
        }
    }
}

fn read_node<T, F: FnMut(&mut Decoder<'_>) -> StoreResult<T>>(
    dec: &mut Decoder<'_>,
    level: u32,
    is_root: bool,
    config: &RTreeConfig,
    dims: usize,
    read_item: &mut F,
    leaves: &mut usize,
) -> StoreResult<Node<T>> {
    let count = dec.u32("node entry count")? as usize;
    if count > config.max_entries {
        return Err(StoreError::corrupt(format!(
            "node with {count} entries exceeds max_entries {}",
            config.max_entries
        )));
    }
    if is_root {
        if level > 0 && count < 2 {
            return Err(StoreError::corrupt(
                "internal root with fewer than 2 entries",
            ));
        }
    } else if count < config.min_entries {
        return Err(StoreError::corrupt(format!(
            "non-root node with {count} entries below min_entries {}",
            config.min_entries
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let rect = read_rect(dec, dims)?;
        if level == 0 {
            let item = read_item(dec)?;
            *leaves += 1;
            entries.push(Entry::Leaf { rect, item });
        } else {
            let child = read_node(dec, level - 1, false, config, dims, read_item, leaves)?;
            let computed = child.mbr();
            if rect != computed {
                return Err(StoreError::corrupt(format!(
                    "stored MBR {rect} differs from recomputed child MBR {computed}"
                )));
            }
            entries.push(Entry::Node {
                rect,
                child: Box::new(child),
            });
        }
    }
    Ok(Node::new(level, entries))
}

pub(crate) fn write_rect(enc: &mut Encoder, rect: &Rect) {
    enc.f64_slice(rect.lo());
    enc.f64_slice(rect.hi());
}

pub(crate) fn read_rect(dec: &mut Decoder<'_>, dims: usize) -> StoreResult<Rect> {
    // Hot path (one call per tree entry): the wire layout (`lo` array
    // then `hi` array) is exactly `Rect`'s internal bounds buffer, so one
    // block read + one decode pass + one validation loop produce the
    // rectangle with a single allocation and no re-validation.
    let bytes = dec.bytes(
        dims.checked_mul(16)
            .ok_or_else(|| StoreError::corrupt("rect dimensionality overflows"))?,
        "rect bounds",
    )?;
    let bounds: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    for i in 0..dims {
        let (l, h) = (bounds[i], bounds[dims + i]);
        if !l.is_finite() || !h.is_finite() {
            return Err(StoreError::corrupt(format!(
                "non-finite rect bound in dim {i}: [{l}, {h}]"
            )));
        }
        if l > h {
            return Err(StoreError::corrupt(format!(
                "inverted rect bounds in dim {i}: {l} > {h}"
            )));
        }
    }
    Ok(Rect::from_validated_bounds(bounds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_usize(enc: &mut Encoder, v: &usize) {
        enc.usize(*v);
    }

    fn decode_usize(dec: &mut Decoder<'_>) -> StoreResult<usize> {
        dec.usize("item")
    }

    fn sample_tree(n: usize, fanout: usize) -> RStarTree<usize> {
        let mut t = RStarTree::new(RTreeConfig::with_max_entries(fanout));
        for i in 0..n {
            let x = (i % 17) as f64;
            let y = (i / 17) as f64;
            t.insert_point(&[x, y, (i % 5) as f64], i);
        }
        t
    }

    fn round_trip(tree: &RStarTree<usize>) -> RStarTree<usize> {
        let mut enc = Encoder::new();
        tree.write_to(&mut enc, &mut encode_usize);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = RStarTree::read_from(&mut dec, &mut decode_usize).unwrap();
        dec.finish().unwrap();
        restored
    }

    fn assert_same_structure(a: &RStarTree<usize>, b: &RStarTree<usize>) {
        // Identical bytes on re-serialization ⇒ identical node structure,
        // entry order, MBR bits and payloads.
        let mut ea = Encoder::new();
        a.write_to(&mut ea, &mut encode_usize);
        let mut eb = Encoder::new();
        b.write_to(&mut eb, &mut encode_usize);
        assert_eq!(ea.into_bytes(), eb.into_bytes());
    }

    #[test]
    fn empty_tree_round_trips() {
        let t: RStarTree<usize> = RStarTree::default();
        let r = round_trip(&t);
        assert_eq!(r.len(), 0);
        assert_eq!(r.dims(), None);
        r.validate();
        assert_same_structure(&t, &r);
    }

    #[test]
    fn populated_tree_round_trips_byte_identically() {
        for n in [1usize, 7, 40, 400] {
            let t = sample_tree(n, 8);
            let r = round_trip(&t);
            assert_eq!(r.len(), t.len());
            assert_eq!(r.dims(), t.dims());
            assert_eq!(r.height(), t.height());
            assert_eq!(r.config(), t.config());
            r.validate();
            assert_same_structure(&t, &r);
            // Search behaves identically, stats included.
            let q = Rect::new(vec![2.0, 1.0, 0.0], vec![9.0, 4.0, 4.0]);
            let mut got_a = Vec::new();
            let sa = t.search(&q, |_, &i| got_a.push(i));
            let mut got_b = Vec::new();
            let sb = r.search(&q, |_, &i| got_b.push(i));
            assert_eq!(got_a, got_b, "n = {n}");
            assert_eq!(sa, sb, "n = {n}: traversal stats must match");
        }
    }

    #[test]
    fn bulk_loaded_tree_round_trips() {
        let items: Vec<(Rect, usize)> = (0..300)
            .map(|i| {
                let p = [(i % 20) as f64, (i / 20) as f64];
                (Rect::from_point(&p), i)
            })
            .collect();
        let t = RStarTree::bulk_load(RTreeConfig::default(), items);
        let r = round_trip(&t);
        r.validate();
        assert_same_structure(&t, &r);
    }

    #[test]
    fn restored_tree_accepts_further_inserts() {
        let t = sample_tree(60, 6);
        let mut r = round_trip(&t);
        for i in 60..120 {
            r.insert_point(&[(i % 17) as f64, (i / 17) as f64, (i % 5) as f64], i);
        }
        assert_eq!(r.len(), 120);
        r.validate();
    }

    #[test]
    fn truncated_stream_is_typed_not_a_panic() {
        let t = sample_tree(120, 8);
        let mut enc = Encoder::new();
        t.write_to(&mut enc, &mut encode_usize);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let err = RStarTree::<usize>::read_from(&mut dec, &mut decode_usize)
                .err()
                .unwrap_or_else(|| panic!("cut at {cut} still decoded"));
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::Corrupt { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn structural_corruption_is_typed() {
        let t = sample_tree(80, 8);
        let mut enc = Encoder::new();
        t.write_to(&mut enc, &mut encode_usize);
        let good = enc.into_bytes();

        // Absurd fan-out in the config header.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut dec = Decoder::new(&bad);
        assert!(matches!(
            RStarTree::<usize>::read_from(&mut dec, &mut decode_usize),
            Err(StoreError::Corrupt { .. })
        ));

        // Absurd root level (would otherwise recurse unboundedly).
        let mut bad = good.clone();
        // config (12) + len (8) + dims flag (1) + dims (8) = offset 29.
        bad[29..33].copy_from_slice(&(1000u32).to_le_bytes());
        let mut dec = Decoder::new(&bad);
        assert!(matches!(
            RStarTree::<usize>::read_from(&mut dec, &mut decode_usize),
            Err(StoreError::Corrupt { .. })
        ));

        // Non-finite rectangle bound.
        let mut bad = good.clone();
        // First rect starts right after the root entry count (offset 37).
        bad[37..45].copy_from_slice(&f64::NAN.to_le_bytes());
        let mut dec = Decoder::new(&bad);
        assert!(matches!(
            RStarTree::<usize>::read_from(&mut dec, &mut decode_usize),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn large_configured_fanout_accepted_up_to_page_geometry() {
        // A fan-out above the old hard-coded `1 << 16` cap but within the
        // derived page-geometry cap decodes fine (empty tree, so there is
        // nothing else to validate).
        let mut enc = Encoder::new();
        enc.u32(100_000);
        enc.u32(2);
        enc.u32(0);
        enc.usize(0); // len
        enc.u8(0); // dims flag
        enc.u32(0); // root level
        enc.u32(0); // root entry count
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let t = RStarTree::<usize>::read_from(&mut dec, &mut decode_usize).unwrap();
        assert_eq!(t.config().max_entries, 100_000);

        // Just above the derived cap is still a typed error, not a panic
        // or an allocation.
        let mut enc = Encoder::new();
        enc.u32((MAX_FANOUT + 1) as u32);
        enc.u32(2);
        enc.u32(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            read_config(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let t = sample_tree(10, 8);
        let mut enc = Encoder::new();
        t.write_to(&mut enc, &mut encode_usize);
        let mut bytes = enc.into_bytes();
        // Claim 11 items while storing 10 (len lives after the 12-byte config).
        bytes[12..20].copy_from_slice(&11u64.to_le_bytes());
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            RStarTree::<usize>::read_from(&mut dec, &mut decode_usize),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn item_decoder_errors_propagate() {
        let t = sample_tree(10, 8);
        let mut enc = Encoder::new();
        t.write_to(&mut enc, &mut encode_usize);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = RStarTree::<usize>::read_from(&mut dec, &mut |_d| {
            Err::<usize, _>(StoreError::corrupt("payload rejected"))
        })
        .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { context } if context.contains("payload")));
    }
}
