//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building the index over a whole relation at once (the common case in the
//! paper's experiments, where the data set is loaded and then queried) is
//! much faster with bottom-up packing than with repeated insertion, and
//! produces well-clustered leaves. Used by the benchmark harness; repeated
//! insertion remains available for incremental workloads, and an ablation
//! benchmark compares the two.

use crate::config::RTreeConfig;
use crate::node::{Entry, Node};
use crate::rect::Rect;
use crate::tree::RStarTree;

impl<T> RStarTree<T> {
    /// Builds a tree from `(rect, item)` pairs using STR packing.
    ///
    /// # Panics
    /// Panics if rectangles disagree in dimensionality.
    pub fn bulk_load(config: RTreeConfig, items: Vec<(Rect, T)>) -> Self {
        config.validate();
        let mut tree = RStarTree::new(config);
        if items.is_empty() {
            return tree;
        }
        let dims = items[0].0.dims();
        for (r, _) in &items {
            assert_eq!(r.dims(), dims, "dimensionality mismatch in bulk load");
        }
        let n = items.len();
        // Pack leaf level.
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(rect, item)| Entry::Leaf { rect, item })
            .collect();
        let cap = config.max_entries;
        let mut level = 0u32;
        loop {
            if entries.len() <= cap {
                tree.set_root_from_entries(level, entries, dims, n);
                return tree;
            }
            str_sort(&mut entries, 0, dims, cap);
            let next_level = level + 1;
            let chunks = chunk_sizes(entries.len(), cap);
            let mut next: Vec<Entry<T>> = Vec::with_capacity(chunks.len());
            let mut drain = entries.into_iter();
            for size in chunks {
                let group: Vec<Entry<T>> = drain.by_ref().take(size).collect();
                let node = Node::new(level, group);
                next.push(Entry::Node {
                    rect: node.mbr(),
                    child: Box::new(node),
                });
            }
            entries = next;
            level = next_level;
        }
    }
}

impl<T> RStarTree<T> {
    /// Inserts a batch of `(rect, item)` pairs.
    ///
    /// Into an empty tree this is a full STR bulk load. Into a non-empty
    /// tree the batch is STR-sorted first and then inserted in that order,
    /// which clusters sibling entries (consecutive trail rectangles of a
    /// subsequence index land in the same leaves) and measurably reduces
    /// node splits versus insertion in arrival order.
    ///
    /// # Panics
    /// Panics if rectangle dimensionalities disagree with each other or
    /// with the tree's existing entries.
    pub fn bulk_extend(&mut self, items: Vec<(Rect, T)>) {
        if items.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = RStarTree::bulk_load(*self.config(), items);
            return;
        }
        let dims = self.dims().expect("non-empty tree has dimensionality");
        for (r, _) in &items {
            assert_eq!(r.dims(), dims, "dimensionality mismatch in bulk extend");
        }
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(rect, item)| Entry::Leaf { rect, item })
            .collect();
        str_sort(&mut entries, 0, dims, self.config().max_entries);
        for entry in entries {
            match entry {
                Entry::Leaf { rect, item } => self.insert(rect, item),
                Entry::Node { .. } => unreachable!("batch holds leaf entries only"),
            }
        }
    }

    fn set_root_from_entries(&mut self, level: u32, entries: Vec<Entry<T>>, dims: usize, n: usize) {
        self.root = Node::new(level, entries);
        self.force_size(n, dims);
    }
}

/// Recursively orders entries in STR fashion: sort the current dimension,
/// slice into vertical slabs sized so each slab packs into roughly equal
/// tiles, recurse on the next dimension within each slab.
fn str_sort<T>(entries: &mut [Entry<T>], dim: usize, dims: usize, cap: usize) {
    let n = entries.len();
    if n <= cap || dim >= dims {
        return;
    }
    entries.sort_by(|a, b| center_coord(a.rect(), dim).total_cmp(&center_coord(b.rect(), dim)));
    if dim + 1 == dims {
        return;
    }
    // Number of leaf pages and vertical slabs (Leutenegger et al.).
    let pages = n.div_ceil(cap);
    let slabs = (pages as f64)
        .powf(1.0 / (dims - dim) as f64)
        .ceil()
        .max(1.0) as usize;
    let slab_len = n.div_ceil(slabs);
    for chunk in entries.chunks_mut(slab_len) {
        str_sort(chunk, dim + 1, dims, cap);
    }
}

#[inline]
fn center_coord(r: &Rect, dim: usize) -> f64 {
    0.5 * (r.lo()[dim] + r.hi()[dim])
}

/// Splits `n` entries into chunks of at most `cap`, sized as evenly as
/// possible so that every chunk (not just all but the last) meets the 40%
/// minimum fill: with `k = ceil(n / cap)` chunks, sizes are `n/k` or
/// `n/k + 1`, and `n/k >= cap/2 >= min_entries`.
fn chunk_sizes(n: usize, cap: usize) -> Vec<usize> {
    debug_assert!(n > cap);
    let k = n.div_ceil(cap);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        out.push(if i < extra { base + 1 } else { base });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 211) as f64;
                let y = ((i * 73) % 197) as f64;
                (Rect::from_point(&[x, y]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_roundtrip() {
        let t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(500));
        assert_eq!(t.len(), 500);
        t.validate();
        let mut ids: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_small_fits_in_root() {
        let t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(5));
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 1);
        t.validate();
    }

    #[test]
    fn bulk_load_empty() {
        let t: RStarTree<usize> = RStarTree::bulk_load(RTreeConfig::default(), Vec::new());
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn bulk_load_queries_agree_with_incremental() {
        let data = points(300);
        let bulk = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), data.clone());
        let mut incr = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (r, i) in data {
            incr.insert(r, i);
        }
        let q = Rect::new(vec![20.0, 20.0], vec![120.0, 120.0]);
        let (mut a, _) = bulk.search_collect(&q);
        let (mut b, _) = incr.search_collect(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_supports_inserts_afterwards() {
        let mut t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(100));
        for i in 100..150 {
            t.insert_point(&[i as f64, i as f64], i);
        }
        assert_eq!(t.len(), 150);
        t.validate();
    }

    #[test]
    fn bulk_extend_empty_tree_is_bulk_load() {
        let mut t: RStarTree<usize> = RStarTree::new(RTreeConfig::with_max_entries(8));
        t.bulk_extend(points(300));
        assert_eq!(t.len(), 300);
        t.validate();
        // Packing quality: same height as a direct bulk load.
        let packed = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(300));
        assert_eq!(t.height(), packed.height());
    }

    #[test]
    fn bulk_extend_into_existing_tree() {
        let mut t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(120));
        let extra: Vec<(Rect, usize)> = (0..180)
            .map(|i| {
                let x = 300.0 + ((i * 41) % 97) as f64;
                let y = 300.0 + ((i * 59) % 89) as f64;
                (Rect::from_point(&[x, y]), 1000 + i)
            })
            .collect();
        t.bulk_extend(extra.clone());
        assert_eq!(t.len(), 300);
        t.validate();
        // Every batch item is findable.
        let q = Rect::new(vec![300.0, 300.0], vec![400.0, 400.0]);
        let (found, _) = t.search_collect(&q);
        assert_eq!(found.len(), 180);
        // Empty batch is a no-op.
        t.bulk_extend(Vec::new());
        assert_eq!(t.len(), 300);
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        for n in [9usize, 33, 100, 1067] {
            for cap in [8usize, 32] {
                if n <= cap {
                    continue;
                }
                let sizes = chunk_sizes(n, cap);
                assert_eq!(sizes.iter().sum::<usize>(), n);
                for &s in &sizes {
                    assert!(s <= cap);
                    assert!(s >= cap / 2, "chunk {s} below half fill (cap {cap}, n {n})");
                }
            }
        }
    }
}
