//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building the index over a whole relation at once (the common case in the
//! paper's experiments, where the data set is loaded and then queried) is
//! much faster with bottom-up packing than with repeated insertion, and
//! produces well-clustered leaves. Used by the benchmark harness; repeated
//! insertion remains available for incremental workloads, and an ablation
//! benchmark compares the two.

use crate::config::RTreeConfig;
use crate::node::{Entry, Node};
use crate::par::{par_for_each_slice, parallel_map};
use crate::rect::Rect;
use crate::tree::RStarTree;

impl<T> RStarTree<T> {
    /// Builds a tree from `(rect, item)` pairs using STR packing.
    ///
    /// # Panics
    /// Panics if rectangles disagree in dimensionality.
    pub fn bulk_load(config: RTreeConfig, items: Vec<(Rect, T)>) -> Self {
        bulk_build(
            config,
            items,
            |entries, dims, cap| str_sort(entries, 0, dims, cap),
            |groups, level| groups.into_iter().map(|g| pack_node(g, level)).collect(),
        )
    }
}

impl<T: Send> RStarTree<T> {
    /// [`RStarTree::bulk_load`] with the heavy per-level work — slab
    /// sorting and node packing — partitioned across up to `threads`
    /// worker threads. Both entry points share the one packing skeleton
    /// (`bulk_build`); only the sort and pack steps differ.
    ///
    /// The parallel build produces a tree *identical* to the sequential
    /// one: the top-level sort is shared, every slab is sorted by the same
    /// comparator independently of the others, and chunk boundaries are
    /// position-based, so thread count never changes entry placement.
    /// `threads <= 1` falls back to the sequential path exactly.
    ///
    /// # Panics
    /// Panics if rectangles disagree in dimensionality.
    pub fn bulk_load_parallel(config: RTreeConfig, items: Vec<(Rect, T)>, threads: usize) -> Self {
        if threads <= 1 {
            return Self::bulk_load(config, items);
        }
        bulk_build(
            config,
            items,
            |entries, dims, cap| str_sort_parallel(entries, dims, cap, threads),
            // Node packing computes every node's MBR — O(n·d) per level —
            // so it parallelizes as well as the sort does.
            |groups, level| parallel_map(threads, groups, |g| pack_node(g, level)),
        )
    }
}

/// The bottom-up STR packing loop shared by the sequential and parallel
/// bulk loaders: validate, wrap leaves, then per level sort (via `sort`)
/// and pack fixed-size chunks into nodes (via `pack`) until everything
/// fits in the root.
fn bulk_build<T>(
    config: RTreeConfig,
    items: Vec<(Rect, T)>,
    sort: impl Fn(&mut [Entry<T>], usize, usize),
    pack: impl Fn(Vec<Vec<Entry<T>>>, u32) -> Vec<Entry<T>>,
) -> RStarTree<T> {
    config.validate();
    let mut tree = RStarTree::new(config);
    if items.is_empty() {
        return tree;
    }
    let dims = items[0].0.dims();
    for (r, _) in &items {
        assert_eq!(r.dims(), dims, "dimensionality mismatch in bulk load");
    }
    let n = items.len();
    // Pack leaf level.
    let mut entries: Vec<Entry<T>> = items
        .into_iter()
        .map(|(rect, item)| Entry::Leaf { rect, item })
        .collect();
    let cap = config.max_entries;
    let mut level = 0u32;
    loop {
        if entries.len() <= cap {
            tree.set_root_from_entries(level, entries, dims, n);
            return tree;
        }
        sort(&mut entries, dims, cap);
        let chunks = chunk_sizes(entries.len(), cap);
        let mut groups: Vec<Vec<Entry<T>>> = Vec::with_capacity(chunks.len());
        let mut drain = entries.into_iter();
        for size in chunks {
            groups.push(drain.by_ref().take(size).collect());
        }
        entries = pack(groups, level);
        level += 1;
    }
}

/// Packs one chunk of entries into a node entry for the next level up.
fn pack_node<T>(group: Vec<Entry<T>>, level: u32) -> Entry<T> {
    let node = Node::new(level, group);
    Entry::Node {
        rect: node.mbr(),
        child: Box::new(node),
    }
}

/// The parallel counterpart of [`str_sort`] for the top recursion level:
/// the dimension-0 sort stays sequential (one global ordering), then the
/// per-slab recursions — independent by construction — fan out across
/// workers. Slab boundaries come from the same [`slab_len`] as the
/// sequential path and each slab runs the identical sequential
/// `str_sort`, so the resulting ordering matches it exactly.
fn str_sort_parallel<T: Send>(entries: &mut [Entry<T>], dims: usize, cap: usize, threads: usize) {
    let n = entries.len();
    if n <= cap || dims == 0 {
        return;
    }
    sort_by_center(entries, 0);
    if dims == 1 {
        return;
    }
    let slices: Vec<&mut [Entry<T>]> = entries.chunks_mut(slab_len(n, cap, dims)).collect();
    par_for_each_slice(threads, slices, |slab| str_sort(slab, 1, dims, cap));
}

impl<T> RStarTree<T> {
    /// Inserts a batch of `(rect, item)` pairs.
    ///
    /// Into an empty tree this is a full STR bulk load. Into a non-empty
    /// tree the batch is STR-sorted first and then inserted in that order,
    /// which clusters sibling entries (consecutive trail rectangles of a
    /// subsequence index land in the same leaves) and measurably reduces
    /// node splits versus insertion in arrival order.
    ///
    /// # Panics
    /// Panics if rectangle dimensionalities disagree with each other or
    /// with the tree's existing entries.
    pub fn bulk_extend(&mut self, items: Vec<(Rect, T)>) {
        if items.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = RStarTree::bulk_load(*self.config(), items);
            return;
        }
        let dims = self.dims().expect("non-empty tree has dimensionality");
        for (r, _) in &items {
            assert_eq!(r.dims(), dims, "dimensionality mismatch in bulk extend");
        }
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(rect, item)| Entry::Leaf { rect, item })
            .collect();
        str_sort(&mut entries, 0, dims, self.config().max_entries);
        for entry in entries {
            match entry {
                Entry::Leaf { rect, item } => self.insert(rect, item),
                Entry::Node { .. } => unreachable!("batch holds leaf entries only"),
            }
        }
    }

    fn set_root_from_entries(&mut self, level: u32, entries: Vec<Entry<T>>, dims: usize, n: usize) {
        self.root = Node::new(level, entries);
        self.force_size(n, dims);
    }
}

/// Recursively orders entries in STR fashion: sort the current dimension,
/// slice into vertical slabs sized so each slab packs into roughly equal
/// tiles, recurse on the next dimension within each slab.
fn str_sort<T>(entries: &mut [Entry<T>], dim: usize, dims: usize, cap: usize) {
    let n = entries.len();
    if n <= cap || dim >= dims {
        return;
    }
    sort_by_center(entries, dim);
    if dim + 1 == dims {
        return;
    }
    for chunk in entries.chunks_mut(slab_len(n, cap, dims - dim)) {
        str_sort(chunk, dim + 1, dims, cap);
    }
}

fn sort_by_center<T>(entries: &mut [Entry<T>], dim: usize) {
    entries.sort_by(|a, b| center_coord(a.rect(), dim).total_cmp(&center_coord(b.rect(), dim)));
}

/// Length of one vertical slab: `n` entries split into
/// `ceil(pages^(1/dims_remaining))` slabs (Leutenegger et al.). Shared by
/// the sequential and parallel sorts so their slab boundaries can never
/// drift apart.
fn slab_len(n: usize, cap: usize, dims_remaining: usize) -> usize {
    let pages = n.div_ceil(cap);
    let slabs = (pages as f64)
        .powf(1.0 / dims_remaining as f64)
        .ceil()
        .max(1.0) as usize;
    n.div_ceil(slabs)
}

#[inline]
fn center_coord(r: &Rect, dim: usize) -> f64 {
    0.5 * (r.lo()[dim] + r.hi()[dim])
}

/// Splits `n` entries into chunks of at most `cap`, sized as evenly as
/// possible so that every chunk (not just all but the last) meets the 40%
/// minimum fill: with `k = ceil(n / cap)` chunks, sizes are `n/k` or
/// `n/k + 1`, and `n/k >= cap/2 >= min_entries`.
fn chunk_sizes(n: usize, cap: usize) -> Vec<usize> {
    debug_assert!(n > cap);
    let k = n.div_ceil(cap);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        out.push(if i < extra { base + 1 } else { base });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 211) as f64;
                let y = ((i * 73) % 197) as f64;
                (Rect::from_point(&[x, y]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_roundtrip() {
        let t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(500));
        assert_eq!(t.len(), 500);
        t.validate();
        let mut ids: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_small_fits_in_root() {
        let t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(5));
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 1);
        t.validate();
    }

    #[test]
    fn bulk_load_empty() {
        let t: RStarTree<usize> = RStarTree::bulk_load(RTreeConfig::default(), Vec::new());
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn bulk_load_queries_agree_with_incremental() {
        let data = points(300);
        let bulk = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), data.clone());
        let mut incr = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (r, i) in data {
            incr.insert(r, i);
        }
        let q = Rect::new(vec![20.0, 20.0], vec![120.0, 120.0]);
        let (mut a, _) = bulk.search_collect(&q);
        let (mut b, _) = incr.search_collect(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_supports_inserts_afterwards() {
        let mut t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(100));
        for i in 100..150 {
            t.insert_point(&[i as f64, i as f64], i);
        }
        assert_eq!(t.len(), 150);
        t.validate();
    }

    /// The load-bearing property of the whole concurrency story: thread
    /// count must never change the tree. Compare structure (height, every
    /// node's entry layout via iteration order) and query answers.
    #[test]
    fn parallel_bulk_load_identical_to_sequential() {
        for n in [40usize, 500, 1500] {
            let seq = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(n));
            for threads in [1usize, 2, 3, 8] {
                let par = RStarTree::bulk_load_parallel(
                    RTreeConfig::with_max_entries(8),
                    points(n),
                    threads,
                );
                par.validate();
                assert_eq!(par.len(), seq.len());
                assert_eq!(par.height(), seq.height(), "n = {n}, threads = {threads}");
                let a: Vec<(&Rect, &usize)> = seq.iter().collect();
                let b: Vec<(&Rect, &usize)> = par.iter().collect();
                assert_eq!(a, b, "n = {n}, threads = {threads}: leaf layout differs");
            }
        }
    }

    #[test]
    fn parallel_bulk_load_empty_and_tiny() {
        let t: RStarTree<usize> =
            RStarTree::bulk_load_parallel(RTreeConfig::default(), Vec::new(), 4);
        assert!(t.is_empty());
        let t = RStarTree::bulk_load_parallel(RTreeConfig::with_max_entries(8), points(3), 4);
        assert_eq!(t.len(), 3);
        t.validate();
    }

    #[test]
    fn bulk_extend_empty_tree_is_bulk_load() {
        let mut t: RStarTree<usize> = RStarTree::new(RTreeConfig::with_max_entries(8));
        t.bulk_extend(points(300));
        assert_eq!(t.len(), 300);
        t.validate();
        // Packing quality: same height as a direct bulk load.
        let packed = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(300));
        assert_eq!(t.height(), packed.height());
    }

    #[test]
    fn bulk_extend_into_existing_tree() {
        let mut t = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), points(120));
        let extra: Vec<(Rect, usize)> = (0..180)
            .map(|i| {
                let x = 300.0 + ((i * 41) % 97) as f64;
                let y = 300.0 + ((i * 59) % 89) as f64;
                (Rect::from_point(&[x, y]), 1000 + i)
            })
            .collect();
        t.bulk_extend(extra.clone());
        assert_eq!(t.len(), 300);
        t.validate();
        // Every batch item is findable.
        let q = Rect::new(vec![300.0, 300.0], vec![400.0, 400.0]);
        let (found, _) = t.search_collect(&q);
        assert_eq!(found.len(), 180);
        // Empty batch is a no-op.
        t.bulk_extend(Vec::new());
        assert_eq!(t.len(), 300);
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        for n in [9usize, 33, 100, 1067] {
            for cap in [8usize, 32] {
                if n <= cap {
                    continue;
                }
                let sizes = chunk_sizes(n, cap);
                assert_eq!(sizes.iter().sum::<usize>(), n);
                for &s in &sizes {
                    assert!(s <= cap);
                    assert!(s >= cap / 2, "chunk {s} below half fill (cap {cap}, n {n})");
                }
            }
        }
    }
}
