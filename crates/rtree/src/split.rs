//! R\*-tree node split (Beckmann et al. 1990, Section 4.2).
//!
//! `ChooseSplitAxis` picks the axis minimizing the sum of margins over all
//! candidate distributions; `ChooseSplitIndex` picks the distribution on
//! that axis minimizing overlap (ties broken by combined area).

use crate::node::Entry;
use crate::rect::Rect;

/// Splits an overflowing entry list (length `max + 1`) into two groups, each
/// holding at least `min` entries.
pub(crate) fn rstar_split<T>(
    entries: Vec<Entry<T>>,
    min: usize,
    _max: usize,
) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    let total = entries.len();
    debug_assert!(
        total >= 2 * min,
        "cannot split {total} entries with min {min}"
    );
    let dims = entries[0].rect().dims();
    // Number of candidate distributions per sorted order.
    let k_count = total - 2 * min + 1;

    // For each axis and each of the two sort keys (by lower, by upper
    // bound), evaluate margin sums; remember the best (axis, order) and then
    // the best distribution on it.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_orders: Vec<Vec<usize>> = Vec::new();

    for axis in 0..dims {
        let mut by_lo: Vec<usize> = (0..total).collect();
        by_lo.sort_by(|&a, &b| {
            entries[a].rect().lo()[axis]
                .total_cmp(&entries[b].rect().lo()[axis])
                .then(entries[a].rect().hi()[axis].total_cmp(&entries[b].rect().hi()[axis]))
        });
        let mut by_hi: Vec<usize> = (0..total).collect();
        by_hi.sort_by(|&a, &b| {
            entries[a].rect().hi()[axis]
                .total_cmp(&entries[b].rect().hi()[axis])
                .then(entries[a].rect().lo()[axis].total_cmp(&entries[b].rect().lo()[axis]))
        });

        let mut margin_sum = 0.0;
        for order in [&by_lo, &by_hi] {
            let (prefix, suffix) = prefix_suffix_mbrs(&entries, order);
            for k in 0..k_count {
                let split_at = min + k;
                margin_sum += prefix[split_at - 1].margin() + suffix[split_at].margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
            best_axis_orders = vec![by_lo, by_hi];
        }
    }
    debug_assert!(!best_axis_orders.is_empty());
    let _ = best_axis; // retained for clarity/debugging

    // ChooseSplitIndex on the winning axis: minimal overlap, ties by area.
    let mut best: Option<(f64, f64, usize, usize)> = None; // (overlap, area, order_idx, split_at)
    for (oi, order) in best_axis_orders.iter().enumerate() {
        let (prefix, suffix) = prefix_suffix_mbrs(&entries, order);
        for k in 0..k_count {
            let split_at = min + k;
            let r1 = &prefix[split_at - 1];
            let r2 = &suffix[split_at];
            let overlap = r1.intersection_area(r2);
            let area = r1.area() + r2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, oi, split_at));
            }
        }
    }
    let (_, _, order_idx, split_at) = best.expect("at least one distribution");
    let order = &best_axis_orders[order_idx];

    // Partition the original entries according to the chosen distribution.
    let mut take_first = vec![false; total];
    for &idx in &order[..split_at] {
        take_first[idx] = true;
    }
    let mut group1 = Vec::with_capacity(split_at);
    let mut group2 = Vec::with_capacity(total - split_at);
    for (idx, entry) in entries.into_iter().enumerate() {
        if take_first[idx] {
            group1.push(entry);
        } else {
            group2.push(entry);
        }
    }
    (group1, group2)
}

/// For a given ordering of entry indices, returns `(prefix, suffix)` where
/// `prefix[i]` is the MBR of `order[0..=i]` and `suffix[i]` the MBR of
/// `order[i..]`.
fn prefix_suffix_mbrs<T>(entries: &[Entry<T>], order: &[usize]) -> (Vec<Rect>, Vec<Rect>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = entries[order[0]].rect().clone();
    prefix.push(acc.clone());
    for &idx in &order[1..] {
        acc.union_assign(entries[idx].rect());
        prefix.push(acc.clone());
    }
    let mut suffix = vec![entries[order[n - 1]].rect().clone(); n];
    for i in (0..n - 1).rev() {
        let mut r = suffix[i + 1].clone();
        r.union_assign(entries[order[i]].rect());
        suffix[i] = r;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_entry(lo: [f64; 2], hi: [f64; 2], id: usize) -> Entry<usize> {
        Entry::Leaf {
            rect: Rect::new(lo.to_vec(), hi.to_vec()),
            item: id,
        }
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<Entry<usize>> = (0..9)
            .map(|i| leaf_entry([i as f64, 0.0], [i as f64 + 0.5, 1.0], i))
            .collect();
        let (g1, g2) = rstar_split(entries, 3, 8);
        assert!(g1.len() >= 3 && g2.len() >= 3);
        assert_eq!(g1.len() + g2.len(), 9);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters along x should split cleanly.
        let mut entries: Vec<Entry<usize>> = Vec::new();
        for i in 0..5 {
            entries.push(leaf_entry(
                [i as f64 * 0.1, 0.0],
                [i as f64 * 0.1 + 0.05, 1.0],
                i,
            ));
        }
        for i in 0..4 {
            entries.push(leaf_entry(
                [100.0 + i as f64 * 0.1, 0.0],
                [100.0 + i as f64 * 0.1 + 0.05, 1.0],
                5 + i,
            ));
        }
        let (g1, g2) = rstar_split(entries, 3, 8);
        let ids = |g: &[Entry<usize>]| {
            let mut v: Vec<usize> = g
                .iter()
                .map(|e| match e {
                    Entry::Leaf { item, .. } => *item,
                    _ => unreachable!(),
                })
                .collect();
            v.sort_unstable();
            v
        };
        let (a, b) = (ids(&g1), ids(&g2));
        // One group holds the low cluster (plus possibly a boundary member),
        // the other the high cluster; overlap between group MBRs is zero.
        let mbr = |g: &[Entry<usize>]| {
            let mut r = g[0].rect().clone();
            for e in &g[1..] {
                r.union_assign(e.rect());
            }
            r
        };
        assert_eq!(
            mbr(&g1).intersection_area(&mbr(&g2)),
            0.0,
            "groups {a:?} / {b:?}"
        );
    }

    #[test]
    fn prefix_suffix_consistency() {
        let entries: Vec<Entry<usize>> = (0..4)
            .map(|i| leaf_entry([i as f64, -(i as f64)], [i as f64 + 1.0, i as f64], i))
            .collect();
        let order: Vec<usize> = vec![2, 0, 3, 1];
        let (prefix, suffix) = prefix_suffix_mbrs(&entries, &order);
        // prefix of everything == suffix of everything == total MBR
        assert_eq!(prefix[3], suffix[0]);
        // prefix[0] is just the first entry's rect
        assert_eq!(&prefix[0], entries[2].rect());
        assert_eq!(&suffix[3], entries[1].rect());
    }
}
