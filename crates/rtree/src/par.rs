//! Fork/join helpers over `std::thread::scope`.
//!
//! The build image has no crates.io access, so there is no rayon; these
//! small order-preserving primitives are what the parallel bulk loader,
//! the partitioned search, and `tsq-core`'s batched executor need. This
//! crate is the lowest layer that wants them, so it is their single home —
//! `tsq_core::executor` re-exports [`parallel_map`].
//!
//! Both helpers preserve the sequential output order exactly, which is
//! what makes every parallel path in the workspace byte-identical to its
//! sequential oracle regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Maps `f` over `items` with up to `threads` workers, preserving order.
///
/// Workers claim indices from a shared atomic counter (work stealing), so
/// a workload mixing cheap and expensive items stays balanced. With
/// `threads <= 1` (or a single item) this is a plain sequential map and
/// spawns nothing. A panicking worker propagates its panic to the caller
/// via the scope join, never a deadlock.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Poison recovery: a sibling's panic is propagated by
                    // the join below; a poisoned slot must not add a
                    // second panic.
                    let item = tasks[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                    if let Some(item) = item {
                        let r = f(item);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic resurfaces with its own
        // payload (the scope's implicit join would replace it with a
        // generic "a scoped thread panicked").
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker completed every claimed task")
        })
        .collect()
}

/// Runs `f` over a set of mutable slices using up to `threads` workers.
///
/// The slices are distributed in contiguous groups; each worker owns its
/// group exclusively, so no synchronization is needed beyond the join.
pub(crate) fn par_for_each_slice<T, F>(threads: usize, slices: Vec<&mut [T]>, f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    let n = slices.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        for s in slices {
            f(s);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<&mut [T]>> = Vec::with_capacity(threads);
    let mut rest = slices;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        parts.push(std::mem::replace(&mut rest, tail));
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                scope.spawn(move || {
                    for s in part {
                        f(s);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 2).collect();
        for threads in [0usize, 1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_map(threads, items.clone(), |i| i * 2),
                want,
                "threads = {threads}"
            );
        }
        assert!(parallel_map::<usize, usize, _>(4, Vec::new(), |i| i).is_empty());
    }

    #[test]
    fn slices_all_visited() {
        let mut data = vec![0u32; 90];
        for threads in [1usize, 2, 7] {
            data.fill(0);
            let slices: Vec<&mut [u32]> = data.chunks_mut(13).collect();
            par_for_each_slice(threads, slices, |s| {
                for v in s.iter_mut() {
                    *v += 1;
                }
            });
            assert!(data.iter().all(|&v| v == 1), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(2, vec![1, 2, 3, 4], |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
