//! Order-preserving fan-out over the persistent [`tsq_pool`] executor.
//!
//! These primitives used to spawn and join fresh OS threads through
//! `std::thread::scope` on every call — thread-creation tax on every
//! batch, every sharded scatter, every parallel bulk load. They are now
//! thin facades over [`tsq_pool::Pool::global`], the process-wide
//! work-stealing pool: submission is a queue push and a wakeup, workers
//! are long-lived and parked when idle, and a fan-out issued from inside
//! pool work runs inline on the owning worker (no deadlock, no
//! oversubscription).
//!
//! This crate is the lowest layer that fans out (STR bulk load,
//! partitioned search), so it is these helpers' single home —
//! `tsq_core::executor` re-exports [`parallel_map`].
//!
//! Both helpers preserve the sequential output order exactly, which is
//! what makes every parallel path in the workspace byte-identical to its
//! sequential oracle regardless of thread count.

/// Maps `f` over `items` with up to `threads`-way concurrency (the
/// calling thread plus pool workers), preserving order.
///
/// Workers claim indices from a shared atomic counter (work stealing), so
/// a workload mixing cheap and expensive items stays balanced. With
/// `threads <= 1`, a single item, or when already running on the pool
/// (nested fan-out) this is a plain sequential map and touches no queues.
/// A panicking item propagates its panic to the caller after the batch
/// settles, never a deadlock — and the pool keeps serving.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    tsq_pool::Pool::global().map(threads, items, f)
}

/// Runs `f` over a set of mutable slices using up to `threads`-way
/// concurrency.
///
/// The slices are distributed in contiguous groups; each group is one
/// pool item owned exclusively by whoever claims it, so no
/// synchronization is needed beyond the map itself.
pub(crate) fn par_for_each_slice<T, F>(threads: usize, slices: Vec<&mut [T]>, f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    let n = slices.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        for s in slices {
            f(s);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<&mut [T]>> = Vec::with_capacity(threads);
    let mut rest = slices;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        parts.push(std::mem::replace(&mut rest, tail));
    }
    let f = &f;
    parallel_map(threads, parts, |part| {
        for s in part {
            f(s);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 2).collect();
        for threads in [0usize, 1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_map(threads, items.clone(), |i| i * 2),
                want,
                "threads = {threads}"
            );
        }
        assert!(parallel_map::<usize, usize, _>(4, Vec::new(), |i| i).is_empty());
    }

    #[test]
    fn slices_all_visited() {
        let mut data = vec![0u32; 90];
        for threads in [1usize, 2, 7] {
            data.fill(0);
            let slices: Vec<&mut [u32]> = data.chunks_mut(13).collect();
            par_for_each_slice(threads, slices, |s| {
                for v in s.iter_mut() {
                    *v += 1;
                }
            });
            assert!(data.iter().all(|&v| v == 1), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(2, vec![1, 2, 3, 4], |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn nested_parallel_map_runs_inline() {
        // An outer fan-out whose items fan out again must complete with
        // exact results — the inner maps inline on the owning worker.
        let outer: Vec<usize> = (0..6).collect();
        let got = parallel_map(4, outer, |o| {
            parallel_map(4, (0..10).collect::<Vec<usize>>(), |i| o * 10 + i)
                .into_iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = (0..6)
            .map(|o| (0..10).map(|i| o * 10 + i).sum::<usize>())
            .collect();
        assert_eq!(got, want);
    }
}
