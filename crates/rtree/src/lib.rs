//! # tsq-rtree — R\*-tree substrate for similarity-based time-series queries
//!
//! A from-scratch implementation of the R\*-tree (Beckmann, Kriegel,
//! Schneider, Seeger, SIGMOD 1990), the index the paper *Similarity-Based
//! Queries for Time Series Data* (Rafiei & Mendelzon, SIGMOD 1997) builds
//! on. The pieces the paper's Algorithms 1 and 2 need are first-class:
//!
//! - [`RStarTree::search_with`] exposes every stored MBR to a caller-supplied
//!   acceptance test, so a safe transformation can be applied to the index
//!   *on the fly* during traversal (Algorithm 1's `I' = T(I)` without
//!   materializing `I'`);
//! - [`RStarTree::nearest_with`] runs best-first nearest-neighbor search
//!   with pluggable lower-bound metrics (MINDIST et al., Roussopoulos 1995),
//!   again allowing transformed metrics;
//! - [`join::spatial_join`] prunes all-pairs queries through both trees with
//!   per-side rectangle transforms;
//! - [`RStarTree::bulk_load`] packs a whole relation with STR;
//! - every query returns [`stats::SearchStats`], whose node-visit counter
//!   stands in for the paper's disk-access measurements.
//!
//! The tree stores arbitrary payloads under dynamic-dimensional rectangles
//! ([`rect::Rect`]); leaf entries may be points (degenerate rectangles),
//! which is how feature vectors are stored by `tsq-core`.
//!
//! Storage comes in two modes. The default keeps every node in memory.
//! [`paged::PagedTree`] stores one node per fixed-size page in a file
//! behind a pin-counted LRU [`page::BufferPool`], so an index larger than
//! memory still works — and its [`stats::SearchStats`] carry *measured*
//! pool hit/miss counts next to the simulated node-visit count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod config;
pub mod join;
pub mod knn;
pub mod page;
pub mod paged;
pub mod persist;
pub mod rect;
pub mod search;
pub mod stats;
pub mod tree;

pub mod par;

mod node;
mod split;

pub use config::RTreeConfig;
pub use join::{spatial_join, spatial_join_with};
pub use knn::Neighbor;
pub use page::{BufferPool, PageId};
pub use paged::PagedTree;
pub use rect::Rect;
pub use stats::{LevelStats, SearchStats};
pub use tree::RStarTree;
