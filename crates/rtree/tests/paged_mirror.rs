//! The paged-tree contract: every query through a [`PagedTree`] answers
//! byte-identically to the in-memory tree it was created from — same
//! results in the same order, same traversal counters — at every pool
//! capacity, including a single page and an unbounded pool. On a fully
//! warm pool, `pool_misses` must be exactly zero.

use proptest::prelude::*;
use tsq_rtree::stats::SearchStats;
use tsq_rtree::{PagedTree, RStarTree, RTreeConfig, Rect};

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tsq-paged-mirror-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.pages"))
}

fn build(points: &[(f64, f64)], fanout: usize) -> RStarTree<usize> {
    let mut tree = RStarTree::new(RTreeConfig::with_max_entries(fanout));
    for (i, &(x, y)) in points.iter().enumerate() {
        tree.insert_point(&[x, y], i);
    }
    tree
}

fn paged_copy(tree: &RStarTree<usize>, tag: &str, capacity: usize) -> PagedTree {
    let path = temp_path(tag);
    PagedTree::create_from(&path, tree, |&i| i as u64).unwrap();
    PagedTree::open(&path, capacity).unwrap()
}

/// Traversal counters must agree exactly; the pool counters are extra
/// information the in-memory tree cannot have.
fn assert_counters_match(mem: &SearchStats, paged: &SearchStats, what: &str) {
    assert_eq!(mem.nodes_visited, paged.nodes_visited, "{what}: nodes");
    assert_eq!(mem.leaves_visited, paged.leaves_visited, "{what}: leaves");
    assert_eq!(mem.entries_tested, paged.entries_tested, "{what}: entries");
    assert_eq!(mem.candidates, paged.candidates, "{what}: candidates");
    assert_eq!(mem.pool_hits, 0, "{what}: mem trees never touch a pool");
    assert_eq!(mem.pool_misses, 0, "{what}: mem trees never touch a pool");
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range queries agree at pool capacities 1, 3, and unbounded.
    #[test]
    fn range_mirrors_memory(points in points_strategy(250), fanout in 4usize..12) {
        let tree = build(&points, fanout);
        let q = Rect::new(vec![-300.0, -450.0], vec![500.0, 350.0]);
        let mut mem_rows = Vec::new();
        let mem_stats = tree.search(&q, |_, &i| mem_rows.push(i));
        for capacity in [1usize, 3, usize::MAX] {
            let paged = paged_copy(&tree, &format!("range-{fanout}-{capacity}"), capacity);
            let mut rows = Vec::new();
            let stats = paged.search(&q, |_, i| rows.push(i as usize)).unwrap();
            prop_assert_eq!(&rows, &mem_rows, "capacity {}", capacity);
            assert_counters_match(&mem_stats, &stats, "range");
            prop_assert_eq!(
                stats.pool_hits + stats.pool_misses,
                paged.pool().hits() + paged.pool().misses(),
                "per-query pool counters must equal the pool's own (fresh pool)"
            );
        }
    }

    /// kNN agrees — results, order, ties, counters — at extreme capacities.
    #[test]
    fn knn_mirrors_memory(points in points_strategy(200),
                          q in (-1e3f64..1e3, -1e3f64..1e3),
                          k in 1usize..16) {
        let tree = build(&points, 6);
        let (mem_res, mem_stats) = tree.nearest_to_point(k, &[q.0, q.1]);
        for capacity in [1usize, usize::MAX] {
            let paged = paged_copy(&tree, &format!("knn-{k}-{capacity}"), capacity);
            let (res, stats) = paged.nearest_to_point(k, &[q.0, q.1]).unwrap();
            prop_assert_eq!(res.len(), mem_res.len());
            for (got, want) in res.iter().zip(&mem_res) {
                prop_assert_eq!(got.item as usize, *want.item, "capacity {}", capacity);
                prop_assert_eq!(got.distance.to_bits(), want.distance.to_bits());
                prop_assert_eq!(&got.rect, want.rect);
            }
            assert_counters_match(&mem_stats, &stats, "knn");
        }
    }

    /// The self-join agrees pair for pair, in emission order.
    #[test]
    fn self_join_mirrors_memory(points in points_strategy(120), eps in 0.0f64..200.0) {
        let tree = build(&points, 5);
        let mut mem_pairs = Vec::new();
        let mem_stats = tsq_rtree::spatial_join_with(
            &tree,
            &tree,
            |ra, rb| ra.rect_min_dist2(rb).sqrt(),
            eps,
            |_, &a, _, &b| mem_pairs.push((a, b)),
        );
        for capacity in [1usize, usize::MAX] {
            let paged = paged_copy(&tree, &format!("join-{capacity}"), capacity);
            let mut pairs = Vec::new();
            let stats = paged
                .self_join_with(
                    |ra, rb| ra.rect_min_dist2(rb).sqrt(),
                    eps,
                    |_, a, _, b| pairs.push((a as usize, b as usize)),
                )
                .unwrap();
            prop_assert_eq!(&pairs, &mem_pairs, "capacity {}", capacity);
            assert_counters_match(&mem_stats, &stats, "join");
        }
    }
}

#[test]
fn warm_pool_has_zero_misses() {
    let points: Vec<(f64, f64)> = (0..400)
        .map(|i| (((i * 37) % 101) as f64, ((i * 53) % 97) as f64))
        .collect();
    let tree = build(&points, 6);
    let paged = paged_copy(&tree, "warm", usize::MAX);
    let q = Rect::new(vec![-10.0, -10.0], vec![200.0, 200.0]);

    // Cold pass: every distinct page visited is a miss.
    let cold = paged.search(&q, |_, _| {}).unwrap();
    assert!(cold.pool_misses > 0, "cold pass must fault pages in");
    assert_eq!(cold.pool_misses, paged.pool().misses());

    // Warm pass over an unbounded pool: all hits, zero misses.
    let warm = paged.search(&q, |_, _| {}).unwrap();
    assert_eq!(warm.pool_misses, 0, "warm unbounded pool must not fault");
    assert_eq!(warm.pool_hits, warm.nodes_visited);
    assert_eq!(paged.pool().misses(), cold.pool_misses);

    // Flush resets residency: the next pass faults again.
    paged.pool().flush();
    let refetched = paged.search(&q, |_, _| {}).unwrap();
    assert_eq!(refetched.pool_misses, cold.pool_misses);
}

#[test]
fn capacity_one_pool_thrashes_but_stays_correct() {
    let points: Vec<(f64, f64)> = (0..300)
        .map(|i| (((i * 71) % 103) as f64, ((i * 29) % 89) as f64))
        .collect();
    let tree = build(&points, 5);
    let paged = paged_copy(&tree, "thrash", 1);
    let q = Rect::new(vec![0.0, 0.0], vec![60.0, 60.0]);
    let mut mem_rows = Vec::new();
    tree.search(&q, |_, &i| mem_rows.push(i));
    let first = paged.search(&q, |_, _| {}).unwrap();
    let mut rows = Vec::new();
    let second = paged.search(&q, |_, i| rows.push(i as usize)).unwrap();
    assert_eq!(rows, mem_rows);
    // A capacity-1 pool re-faults almost everything; only the pinned
    // ancestor chain can hit. Misses must dominate.
    assert!(second.pool_misses > 0);
    assert_eq!(first.nodes_visited, second.nodes_visited);
    assert_eq!(
        paged.pool().hits() + paged.pool().misses(),
        first.pool_hits + first.pool_misses + second.pool_hits + second.pool_misses
    );
}
