//! Property-based tests for the R*-tree: structural invariants hold and
//! queries agree with brute force under arbitrary insert/remove workloads.

use proptest::prelude::*;
use tsq_rtree::{RStarTree, RTreeConfig, Rect};

fn pt(xy: (f64, f64)) -> Vec<f64> {
    vec![xy.0, xy.1]
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every inserted item is found by a window query covering it, and
    /// invariants hold after each insertion batch.
    #[test]
    fn insert_then_query_exact(points in points_strategy(300), fanout in 4usize..16) {
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(fanout));
        for (i, &p) in points.iter().enumerate() {
            tree.insert_point(&pt(p), i);
        }
        tree.validate();
        prop_assert_eq!(tree.len(), points.len());
        // Window query equals brute-force filtering.
        let q = Rect::new(vec![-250.0, -250.0], vec![400.0, 300.0]);
        let (mut got, _) = tree.search_collect(&q);
        let mut got: Vec<usize> = got.drain(..).copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_point(&[x, y]))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// KNN agrees with a brute-force scan for arbitrary data and queries.
    #[test]
    fn knn_matches_brute(points in points_strategy(200),
                         q in (-1e3f64..1e3, -1e3f64..1e3),
                         k in 1usize..20) {
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (i, &p) in points.iter().enumerate() {
            tree.insert_point(&pt(p), i);
        }
        let (got, _) = tree.nearest_to_point(k, &pt(q));
        let mut dists: Vec<f64> = points
            .iter()
            .map(|&(x, y)| ((x - q.0).powi(2) + (y - q.1).powi(2)).sqrt())
            .collect();
        dists.sort_by(f64::total_cmp);
        dists.truncate(k);
        prop_assert_eq!(got.len(), dists.len());
        for (g, w) in got.iter().zip(&dists) {
            prop_assert!((g.distance - w).abs() < 1e-6);
        }
    }

    /// Removing a random subset leaves exactly the complement, with
    /// invariants intact throughout.
    #[test]
    fn insert_remove_mix(points in points_strategy(150), seed in 0u64..1000) {
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(6));
        for (i, &p) in points.iter().enumerate() {
            tree.insert_point(&pt(p), i);
        }
        let mut removed = Vec::new();
        for (i, &p) in points.iter().enumerate() {
            if (i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 3 == 0 {
                let r = Rect::from_point(&pt(p));
                prop_assert_eq!(tree.remove(&r, |&it| it == i), Some(i));
                removed.push(i);
            }
        }
        tree.validate();
        prop_assert_eq!(tree.len(), points.len() - removed.len());
        let mut remaining: Vec<usize> = tree.iter().map(|(_, &i)| i).collect();
        remaining.sort_unstable();
        let mut want: Vec<usize> = (0..points.len()).filter(|i| !removed.contains(i)).collect();
        want.sort_unstable();
        prop_assert_eq!(remaining, want);
    }

    /// Bulk load produces a valid tree answering queries identically to
    /// incremental insertion.
    #[test]
    fn bulk_equals_incremental(points in points_strategy(400),
                               window in (-1e3f64..0.0, -1e3f64..0.0, 0.0f64..1e3, 0.0f64..1e3)) {
        let items: Vec<(Rect, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (Rect::from_point(&pt(p)), i))
            .collect();
        let bulk = RStarTree::bulk_load(RTreeConfig::with_max_entries(8), items.clone());
        bulk.validate();
        let mut incr = RStarTree::new(RTreeConfig::with_max_entries(8));
        for (r, i) in items {
            incr.insert(r, i);
        }
        let q = Rect::new(vec![window.0, window.1], vec![window.2, window.3]);
        let (mut a, _) = bulk.search_collect(&q);
        let (mut b, _) = incr.search_collect(&q);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The self-join at distance eps finds exactly the pairs a brute-force
    /// double loop finds (each unordered pair twice).
    #[test]
    fn self_join_matches_brute(points in points_strategy(60), eps in 0.0f64..200.0) {
        let mut tree = RStarTree::new(RTreeConfig::with_max_entries(5));
        for (i, &p) in points.iter().enumerate() {
            tree.insert_point(&pt(p), i);
        }
        let mut got: Vec<(usize, usize)> = Vec::new();
        tsq_rtree::spatial_join(
            &tree,
            &tree,
            |r| r.clone(),
            |r| r.clone(),
            eps,
            |_, &a, _, &b| got.push((a, b)),
        );
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            for (j, &(xj, yj)) in points.iter().enumerate() {
                if i != j && ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt() <= eps {
                    want.push((i, j));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
